// Tests for the design-rule checker: a flow-produced design is clean of
// errors, and each rule fires when its violation is injected.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "gen/designs.hpp"
#include "netlist/checks.hpp"
#include "place/place.hpp"
#include "tech/library_factory.hpp"
#include "util/log.hpp"

namespace mc = m3d::core;
namespace mg = m3d::gen;
namespace mn = m3d::netlist;
namespace mt = m3d::tech;

namespace {

mc::FlowResult flow(mc::Config cfg = mc::Config::Hetero3D) {
  m3d::util::set_log_level(m3d::util::LogLevel::Silent);
  mg::GenOptions g;
  g.scale = 0.06;
  mc::FlowOptions o;
  o.clock_period_ns = 1.2;
  o.opt.max_sizing_rounds = 1;
  o.repart.max_iters = 1;
  return mc::run_flow(mg::make_netcard(g), cfg, o);
}

bool has_rule(const std::vector<mn::CheckViolation>& v,
              const std::string& rule) {
  for (const auto& x : v)
    if (x.rule == rule) return true;
  return false;
}

}  // namespace

TEST(Checks, FlowOutputIsErrorClean) {
  const auto r = flow();
  const auto v = mn::run_checks(r.design);
  EXPECT_EQ(mn::count_violations(v, mn::CheckSeverity::Error), 0)
      << mn::check_report(v);
}

TEST(Checks, TwoDFlowAlsoClean) {
  const auto r = flow(mc::Config::TwoD12T);
  const auto v = mn::run_checks(r.design);
  EXPECT_EQ(mn::count_violations(v, mn::CheckSeverity::Error), 0)
      << mn::check_report(v);
}

TEST(Checks, DetectsOverlap) {
  auto r = flow();
  auto& d = r.design;
  // Stack two comb cells of the same tier on top of each other.
  mn::CellId a = mn::kInvalidId, b = mn::kInvalidId;
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c) {
    if (!d.nl().cell(c).is_comb()) continue;
    if (d.tier(c) != mn::kBottomTier) continue;
    if (a == mn::kInvalidId)
      a = c;
    else {
      b = c;
      break;
    }
  }
  ASSERT_NE(b, mn::kInvalidId);
  d.set_pos(b, d.pos(a));
  const auto v = mn::run_checks(d);
  EXPECT_TRUE(has_rule(v, "placement.overlap")) << mn::check_report(v);
}

TEST(Checks, DetectsOutsideDieAndOffRow) {
  auto r = flow();
  auto& d = r.design;
  mn::CellId a = mn::kInvalidId;
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c)
    if (d.nl().cell(c).is_comb()) {
      a = c;
      break;
    }
  d.set_pos(a, {d.floorplan().xhi + 50.0, d.floorplan().yhi + 50.0});
  auto v = mn::run_checks(d);
  EXPECT_TRUE(has_rule(v, "placement.outside"));

  d.set_pos(a, {d.floorplan().center().x, d.floorplan().center().y + 0.37});
  v = mn::run_checks(d);
  EXPECT_TRUE(has_rule(v, "placement.off_row"));
}

TEST(Checks, DetectsUnclockedFlop) {
  auto r = flow();
  auto& d = r.design;
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c)
    if (d.nl().cell(c).is_sequential()) {
      d.nl().disconnect(d.nl().clock_pin(c));
      break;
    }
  const auto v = mn::run_checks(d);
  EXPECT_TRUE(has_rule(v, "clock.unclocked"));
}

TEST(Checks, DetectsExcessFanoutAsWarning) {
  auto r = flow();
  auto& d = r.design;
  mn::CheckOptions opt;
  opt.max_fanout = 1;  // everything with fanout 2+ now trips
  const auto v = mn::run_checks(d, opt);
  EXPECT_TRUE(has_rule(v, "electrical.fanout"));
  EXPECT_GT(mn::count_violations(v, mn::CheckSeverity::Warning), 0);
  // Still no *errors* — fanout is advisory.
  EXPECT_EQ(mn::count_violations(v, mn::CheckSeverity::Error), 0);
}

TEST(Checks, ReportIsReadable) {
  auto r = flow();
  auto& d = r.design;
  mn::CheckOptions opt;
  opt.max_fanout = 1;
  const auto v = mn::run_checks(d, opt);
  const auto rep = mn::check_report(v);
  EXPECT_NE(rep.find("warning"), std::string::npos);
  EXPECT_NE(rep.find("electrical.fanout"), std::string::npos);
}
