// Tests for the Table IV cost model and PPAC metrics, cross-checked
// against the paper's published values where the table gives them.

#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost.hpp"
#include "util/check.hpp"

namespace mc = m3d::cost;

TEST(Cost, WaferCostsMatchTableIV) {
  mc::CostModel m;
  EXPECT_NEAR(m.wafer_cost_2d(), 0.96, 1e-12);
  EXPECT_NEAR(m.wafer_cost_3d(), 1.97, 1e-12);
}

TEST(Cost, WaferAreaFor300mm) {
  mc::CostModel m;
  EXPECT_NEAR(m.wafer_area_mm2(), M_PI * 150.0 * 150.0, 1e-6);
}

TEST(Cost, DiesPerWaferEdgeLoss) {
  mc::CostModel m;
  const double dpw = m.dies_per_wafer(100.0);  // 10×10 mm die
  // Raw area ratio ~707; edge loss removes ~sqrt(2π·707) ≈ 67.
  EXPECT_LT(dpw, m.wafer_area_mm2() / 100.0);
  EXPECT_NEAR(dpw, 707.0 - 66.6, 2.0);
}

TEST(Cost, YieldDecreasesWithArea) {
  mc::CostModel m;
  EXPECT_GT(m.die_yield_2d(1.0), m.die_yield_2d(100.0));
  EXPECT_NEAR(m.die_yield_2d(0.0), 0.95, 1e-12);  // κ at zero area
}

TEST(Cost, ThreeDYieldDegraded) {
  mc::CostModel m;
  EXPECT_NEAR(m.die_yield_3d(10.0) / m.die_yield_2d(10.0), 0.95, 1e-12);
}

TEST(Cost, DieCostReproducesTableVI_Cpu) {
  // Paper Table VI CPU: Si area 0.390 mm² over two tiers → 0.195 mm²
  // footprint, hetero-3-D die cost 6.26 × 10⁻⁶ C′.
  mc::CostModel m;
  const double cost = m.die_cost(0.195, /*three_d=*/true);
  EXPECT_NEAR(cost * 1e6, 6.26, 0.15);
}

TEST(Cost, DieCostReproducesTableVI_Aes) {
  // AES: Si area 0.126 mm² → footprint 0.063 mm², die cost 1.97e-6 C′.
  mc::CostModel m;
  const double cost = m.die_cost(0.063, /*three_d=*/true);
  EXPECT_NEAR(cost * 1e6, 1.97, 0.08);
}

TEST(Cost, PublishedFormulaDiffersByYield) {
  mc::CostModel m;
  const double a = 0.2;
  EXPECT_NEAR(m.die_cost_as_published(a, true),
              m.die_cost(a, true) / m.die_yield_3d(a), 1e-15);
}

TEST(Cost, SmallerDieIsCheaper) {
  mc::CostModel m;
  EXPECT_LT(m.die_cost(0.1, false), m.die_cost(0.2, false));
  EXPECT_LT(m.die_cost(0.1, true), m.die_cost(0.2, true));
}

TEST(Cost, ThreeDDieCostVsTwoSeparateDies) {
  // A 3-D die with half the footprint is cheaper than the 2-D die of the
  // same silicon when the area is large (yield wins), a core paper trade.
  mc::CostModel m;
  const double big = 1.2;  // mm² of silicon
  const double cost_2d = m.die_cost(big, false);
  const double cost_3d = m.die_cost(big / 2.0, true);
  // 3-D wafer is ~2× the cost but the die is half area with better yield;
  // at this size the 3-D premium is modest.
  EXPECT_LT(cost_3d / cost_2d, 1.15);
}

TEST(Cost, PdpMatchesTableVI) {
  // Netcard: 550 mW × 0.608 ns = 334.4 pJ (table: 334.5).
  EXPECT_NEAR(mc::pdp_pj(550.0, 0.608), 334.4, 0.5);
  EXPECT_NEAR(mc::effective_delay_ns(0.571, -0.037), 0.608, 1e-12);
}

TEST(Cost, PpcMatchesTableVI) {
  // CPU: 1.2 GHz, 188 mW, 6.26e-6 C′ → 1.02.
  EXPECT_NEAR(mc::ppc(1.2, 188.0, 6.26e-6), 1.02, 0.01);
  // Netcard: 1.75 GHz, 550 mW, 6.16e-6 C′ → 0.517.
  EXPECT_NEAR(mc::ppc(1.75, 550.0, 6.16e-6), 0.517, 0.005);
  // AES: 3.0 GHz, 138 mW, 1.97e-6 C′ → 11.06.
  EXPECT_NEAR(mc::ppc(3.0, 138.0, 1.97e-6), 11.03, 0.1);
}

TEST(Cost, CostPerCm2Normalization) {
  // 1e-6 C′ die on 1 mm² of silicon = 100e-6 C′ per cm².
  EXPECT_NEAR(mc::cost_per_cm2(1e-6, 1.0), 100.0, 1e-9);
}

TEST(Cost, GuardsInvalidInputs) {
  mc::CostModel m;
  EXPECT_THROW(m.dies_per_wafer(0.0), m3d::util::Error);
  EXPECT_THROW(mc::ppc(1.0, 0.0, 1.0), m3d::util::Error);
  EXPECT_THROW(mc::cost_per_cm2(1.0, 0.0), m3d::util::Error);
}

// ---- N-tier stacks -------------------------------------------------------

TEST(Cost, NTierWaferCostReproducesPublished) {
  mc::CostModel m;
  EXPECT_NEAR(m.wafer_cost(1), m.wafer_cost_2d(), 1e-12);
  EXPECT_NEAR(m.wafer_cost(2), m.wafer_cost_3d(), 1e-12);
  // Each extra tier adds one FEOL + BEOL pass and one bond premium.
  EXPECT_NEAR(m.wafer_cost(3), 3 * 0.96 + 2 * 0.05, 1e-12);
  // A uniform per-tier stack must price identically to the int form.
  const std::vector<mc::TierProcess> stack(4);
  EXPECT_NEAR(m.wafer_cost(stack), m.wafer_cost(4), 1e-12);
}

TEST(Cost, NTierDieCostMatchesBoolForm) {
  mc::CostModel m;
  for (double a : {0.5, 5.0, 50.0}) {
    EXPECT_DOUBLE_EQ(m.die_cost(a, 1), m.die_cost(a, false)) << a;
    EXPECT_DOUBLE_EQ(m.die_cost(a, 2), m.die_cost(a, true)) << a;
  }
}

TEST(Cost, NTierDieCostMonotoneInTierCount) {
  // Same footprint, taller stack: every tier adds wafer processing and
  // every bond degrades yield, so cost per good die strictly rises.
  mc::CostModel m;
  for (double a : {1.0, 20.0}) {
    double prev = 0.0;
    for (int tiers = 1; tiers <= 5; ++tiers) {
      const double c = m.die_cost(a, tiers);
      EXPECT_GT(c, prev) << "area " << a << " tiers " << tiers;
      prev = c;
    }
  }
}

TEST(Cost, HugeDieCostsInfinity) {
  // A die larger than the usable wafer yields no good dies: the model
  // reports +inf instead of a negative or divide-by-zero cost.
  mc::CostModel m;
  const double huge = m.wafer_area_mm2() * 2.0;
  EXPECT_EQ(m.good_dies(huge, 2), 0.0);
  EXPECT_TRUE(std::isinf(m.die_cost(huge, 2)));
  EXPECT_GT(m.die_cost(huge, 2), 0.0);
}

TEST(Cost, ZeroAreaStillGuardedInNTierForm) {
  mc::CostModel m;
  EXPECT_THROW(m.die_cost(0.0, 3), m3d::util::Error);
  EXPECT_THROW(m.die_cost(-1.0, 3), m3d::util::Error);
  EXPECT_THROW(m.die_cost(1.0, 0), m3d::util::Error);
}

TEST(Cost, PublishedFormulaDivergesFromStandardAtLowYield) {
  // The literal equation (5) divides by yield twice; at big-die (low
  // yield) sizes the published form overstates cost by exactly 1/yield.
  mc::CostModel m;
  const double a = 100.0;
  const double y = m.die_yield_3d(a);
  ASSERT_LT(y, 0.5);
  EXPECT_NEAR(m.die_cost_as_published(a, true) / m.die_cost(a, true),
              1.0 / y, 1e-9);
}

TEST(Cost, FoldCrossoverBracketsTheSignChange) {
  // The bisected break-even must actually separate "2-D cheaper" from
  // "fold cheaper" to within the tolerance — the old 1.05x geometric
  // scan overshot by up to 5 % of the die size.
  mc::CostModel m;
  const double tol = 0.01;
  const double x = mc::fold_crossover_area_mm2(m, 2, 0.05, 120.0, tol);
  ASSERT_GT(x, 0.0);
  EXPECT_GT(m.die_cost((x - 0.1) / 2.0, 2), m.die_cost(x - 0.1, 1));
  EXPECT_LE(m.die_cost((x + 0.1) / 2.0, 2), m.die_cost(x + 0.1, 1));
  // Resolution: the sign change sits inside [x - tol, x + tol], far
  // tighter than the 0.1 mm² the ISSUE asks for.
  EXPECT_GT(m.die_cost((x - tol * 2) / 2.0, 2), m.die_cost(x - tol * 2, 1));
}

TEST(Cost, FoldCrossoverNeverReachedReturnsMinusOne) {
  // With no integration premium and no yield degradation the fold is
  // cheaper at every size — the scan reports that as -1 ("no crossover
  // in range" / already cheaper at the left edge).
  mc::CostModel m;
  m.integration_3d = 0.0;
  m.yield_degradation_3d = 1.0;
  EXPECT_EQ(mc::fold_crossover_area_mm2(m), -1.0);
}
