// Unit tests for the netlist module: construction, connectivity, pin
// helpers, validation, stats, Design tier/area semantics, writers.

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "netlist/writer.hpp"
#include "tech/library_factory.hpp"

namespace mn = m3d::netlist;
namespace mt = m3d::tech;

namespace {
/// in -> INV -> DFF -> out plus clock.
mn::Netlist tiny_netlist() {
  mn::Netlist nl("tiny");
  const auto in = nl.add_input_port("in");
  const auto out = nl.add_output_port("out");
  const auto clk_port = nl.add_input_port("clk");
  const auto inv = nl.add_comb("u_inv", mt::CellFunc::Inv, 1);
  const auto ff = nl.add_dff("u_ff", 1);

  const auto n_in = nl.add_net("n_in");
  nl.connect(n_in, nl.output_pin(in));
  nl.connect(n_in, nl.input_pin(inv, 0));

  const auto n_d = nl.add_net("n_d");
  nl.connect(n_d, nl.output_pin(inv));
  nl.connect(n_d, nl.input_pin(ff, 0));

  const auto n_q = nl.add_net("n_q");
  nl.connect(n_q, nl.output_pin(ff));
  nl.connect(n_q, nl.input_pin(out, 0));

  const auto n_clk = nl.add_net("clk", /*is_clock=*/true);
  nl.connect(n_clk, nl.output_pin(clk_port));
  nl.connect(n_clk, nl.clock_pin(ff));
  return nl;
}
}  // namespace

TEST(Netlist, BuildAndCounts) {
  const auto nl = tiny_netlist();
  const auto s = nl.stats();
  EXPECT_EQ(s.cells, 2);
  EXPECT_EQ(s.comb_cells, 1);
  EXPECT_EQ(s.seq_cells, 1);
  EXPECT_EQ(s.ports, 3);
  EXPECT_EQ(s.nets, 4);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, PinHelpers) {
  mn::Netlist nl;
  const auto c = nl.add_comb("g", mt::CellFunc::Nand2, 2);
  EXPECT_EQ(nl.input_pins(c).size(), 2u);
  EXPECT_EQ(nl.output_pins(c).size(), 1u);
  EXPECT_EQ(nl.clock_pin(c), mn::kInvalidId);
  const auto ff = nl.add_dff("f", 1);
  EXPECT_NE(nl.clock_pin(ff), mn::kInvalidId);
  EXPECT_TRUE(nl.pin(nl.clock_pin(ff)).is_clock);
}

TEST(Netlist, MacroPins) {
  mn::Netlist nl;
  const auto m = nl.add_macro("mem0", "SRAM_1KX32", 44, 32);
  EXPECT_EQ(nl.input_pins(m).size(), 44u);
  EXPECT_EQ(nl.output_pins(m).size(), 32u);
  EXPECT_NE(nl.clock_pin(m), mn::kInvalidId);
  EXPECT_TRUE(nl.cell(m).fixed);
}

TEST(Netlist, FanoutAndSinks) {
  mn::Netlist nl;
  const auto a = nl.add_comb("a", mt::CellFunc::Inv, 1);
  const auto b = nl.add_comb("b", mt::CellFunc::Inv, 1);
  const auto c = nl.add_comb("c", mt::CellFunc::Inv, 1);
  const auto n = nl.add_net("n");
  nl.connect(n, nl.output_pin(a));
  nl.connect(n, nl.input_pin(b, 0));
  nl.connect(n, nl.input_pin(c, 0));
  EXPECT_EQ(nl.fanout(n), 2);
  EXPECT_EQ(nl.sinks(n).size(), 2u);
  EXPECT_EQ(nl.net(n).driver, nl.output_pin(a));
}

TEST(Netlist, RejectsDoubleDriver) {
  mn::Netlist nl;
  const auto a = nl.add_comb("a", mt::CellFunc::Inv, 1);
  const auto b = nl.add_comb("b", mt::CellFunc::Inv, 1);
  const auto n = nl.add_net("n");
  nl.connect(n, nl.output_pin(a));
  EXPECT_THROW(nl.connect(n, nl.output_pin(b)), m3d::util::Error);
}

TEST(Netlist, RejectsDoubleConnectOfPin) {
  mn::Netlist nl;
  const auto a = nl.add_comb("a", mt::CellFunc::Inv, 1);
  const auto n1 = nl.add_net("n1");
  const auto n2 = nl.add_net("n2");
  nl.connect(n1, nl.output_pin(a));
  EXPECT_THROW(nl.connect(n2, nl.output_pin(a)), m3d::util::Error);
}

TEST(Netlist, DisconnectAllowsRewiring) {
  mn::Netlist nl;
  const auto a = nl.add_comb("a", mt::CellFunc::Inv, 1);
  const auto b = nl.add_comb("b", mt::CellFunc::Inv, 1);
  const auto n1 = nl.add_net("n1");
  nl.connect(n1, nl.output_pin(a));
  nl.connect(n1, nl.input_pin(b, 0));
  nl.disconnect(nl.input_pin(b, 0));
  EXPECT_EQ(nl.fanout(n1), 0);
  const auto n2 = nl.add_net("n2");
  nl.connect(n2, nl.input_pin(b, 0));
  EXPECT_EQ(nl.pin(nl.input_pin(b, 0)).net, n2);
  // Disconnecting the driver clears the net's driver.
  nl.disconnect(nl.output_pin(a));
  EXPECT_EQ(nl.net(n1).driver, mn::kInvalidId);
}

TEST(Netlist, ValidateCatchesUnconnectedInput) {
  mn::Netlist nl;
  const auto a = nl.add_comb("a", mt::CellFunc::Inv, 1);
  const auto n = nl.add_net("n");
  nl.connect(n, nl.output_pin(a));
  EXPECT_THROW(nl.validate(), m3d::util::Error);  // input pin dangling
}

TEST(Netlist, ValidateCatchesDriverlessNetWithSinks) {
  mn::Netlist nl;
  const auto a = nl.add_comb("a", mt::CellFunc::Buf, 1);
  const auto n = nl.add_net("n");
  nl.connect(n, nl.input_pin(a, 0));
  EXPECT_THROW(nl.validate(), m3d::util::Error);
}

TEST(Netlist, Blocks) {
  mn::Netlist nl;
  const auto b1 = nl.add_block("alu");
  const auto b2 = nl.add_block("fpu");
  const auto b1_again = nl.add_block("alu");
  EXPECT_EQ(b1, b1_again);
  EXPECT_NE(b1, b2);
  EXPECT_EQ(nl.block_name(b1), "alu");
  const auto c = nl.add_comb("x", mt::CellFunc::Inv, 1, b2);
  EXPECT_EQ(nl.cell(c).block, b2);
}

TEST(Design, TwoDHasOneTier) {
  mn::Design d(tiny_netlist(), mt::make_12track());
  EXPECT_EQ(d.num_tiers(), 1);
  EXPECT_FALSE(d.is_3d());
  EXPECT_THROW(d.set_tier(0, mn::kTopTier), m3d::util::Error);
}

TEST(Design, HeteroTierRemapChangesAreaAndLib) {
  mn::Design d(tiny_netlist(), mt::make_12track(), mt::make_9track());
  EXPECT_TRUE(d.is_3d());
  // find the INV cell
  mn::CellId inv = mn::kInvalidId;
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c)
    if (d.nl().cell(c).name == "u_inv") inv = c;
  ASSERT_NE(inv, mn::kInvalidId);

  const double area_bottom = d.cell_area(inv);
  EXPECT_EQ(d.lib_of(inv).tracks(), 12);
  d.set_tier(inv, mn::kTopTier);
  EXPECT_EQ(d.lib_of(inv).tracks(), 9);
  const double area_top = d.cell_area(inv);
  // 9-track tier: 25 % smaller cell area — this is the heterogeneity lever.
  EXPECT_NEAR(area_top / area_bottom, 0.75, 1e-9);
}

TEST(Design, AreasAndDensity) {
  mn::Design d(tiny_netlist(), mt::make_12track());
  EXPECT_GT(d.total_std_cell_area(), 0.0);
  EXPECT_DOUBLE_EQ(d.total_macro_area(), 0.0);
  d.set_floorplan({0, 0, 10, 10});
  EXPECT_DOUBLE_EQ(d.silicon_area(), 100.0);
  EXPECT_NEAR(d.density(), d.total_std_cell_area() / 100.0, 1e-12);
}

TEST(Design, TierAreaSplits) {
  mn::Design d(tiny_netlist(), mt::make_12track(), mt::make_9track());
  const double total = d.total_std_cell_area();
  EXPECT_NEAR(d.tier_std_cell_area(mn::kBottomTier), total, 1e-12);
  // Move everything to top: total shrinks by 25 % (all 9T now).
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c)
    if (!d.nl().cell(c).is_port()) d.set_tier(c, mn::kTopTier);
  EXPECT_NEAR(d.total_std_cell_area() / total, 0.75, 1e-9);
}

TEST(Design, PinCapResolvesThroughTier) {
  mn::Design d(tiny_netlist(), mt::make_12track(), mt::make_9track());
  mn::CellId inv = mn::kInvalidId;
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c)
    if (d.nl().cell(c).name == "u_inv") inv = c;
  const auto pin = d.nl().input_pin(inv, 0);
  const double cap12 = d.pin_cap_ff(pin);
  d.set_tier(inv, mn::kTopTier);
  const double cap9 = d.pin_cap_ff(pin);
  EXPECT_LT(cap9, cap12);  // 9-track inputs are lighter
}

TEST(Design, SyncGrowsStateForNewCells) {
  mn::Design d(tiny_netlist(), mt::make_12track(), mt::make_9track());
  const int before = d.nl().cell_count();
  const auto buf = d.nl().add_comb("u_buf", mt::CellFunc::Buf, 2);
  d.sync(mn::kTopTier);
  EXPECT_EQ(d.nl().cell_count(), before + 1);
  EXPECT_EQ(d.tier(buf), mn::kTopTier);
  EXPECT_EQ(d.pos(buf), (m3d::util::Point{0, 0}));
}

TEST(Writer, VerilogContainsCellsAndNets) {
  const auto nl = tiny_netlist();
  const std::string v = mn::verilog_string(nl);
  EXPECT_NE(v.find("module tiny"), std::string::npos);
  EXPECT_NE(v.find("INV_X1 u_inv"), std::string::npos);
  EXPECT_NE(v.find("DFF_X1 u_ff"), std::string::npos);
  EXPECT_NE(v.find("wire n_d;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Writer, PlacementDumpHasTierAndCoords) {
  mn::Design d(tiny_netlist(), mt::make_12track(), mt::make_9track());
  d.set_floorplan({0, 0, 50, 50});
  d.set_pos(3, {1.5, 2.5});
  const std::string s = mn::placement_string(d);
  EXPECT_NE(s.find("TIERS 2"), std::string::npos);
  EXPECT_NE(s.find("DIEAREA ( 0 0 ) ( 50 50 )"), std::string::npos);
  EXPECT_NE(s.find("1.500 2.500"), std::string::npos);
}

// ---- non-allocating traversal accessors ----------------------------------

TEST(Netlist, SinksIntoAndForEachSinkMatchSinks) {
  const auto nl = tiny_netlist();
  std::vector<mn::PinId> buf;
  for (mn::NetId n = 0; n < nl.net_count(); ++n) {
    const auto expected = nl.sinks(n);
    nl.sinks_into(n, buf);
    EXPECT_EQ(buf, expected) << "net " << n;
    std::vector<mn::PinId> visited;
    nl.for_each_sink(n, [&](mn::PinId p) { visited.push_back(p); });
    EXPECT_EQ(visited, expected) << "net " << n;
  }
}

TEST(Netlist, PinSpansMatchAllocatingAccessors) {
  const auto nl = tiny_netlist();
  for (mn::CellId c = 0; c < nl.cell_count(); ++c) {
    const auto in_vec = nl.input_pins(c);
    const auto in_span = nl.input_pins_of(c);
    ASSERT_EQ(in_span.size(), in_vec.size()) << "cell " << c;
    for (std::size_t i = 0; i < in_vec.size(); ++i)
      EXPECT_EQ(in_span[i], in_vec[i]) << "cell " << c << " pin " << i;
    const auto out_vec = nl.output_pins(c);
    const auto out_span = nl.output_pins_of(c);
    ASSERT_EQ(out_span.size(), out_vec.size()) << "cell " << c;
    for (std::size_t i = 0; i < out_vec.size(); ++i)
      EXPECT_EQ(out_span[i], out_vec[i]) << "cell " << c << " pin " << i;
  }
}

TEST(Netlist, PinIndexRebuildsAfterGrowth) {
  auto nl = tiny_netlist();
  // Force the CSR cache to build, then grow the netlist: spans must
  // reflect the new pins, not the stale index.
  (void)nl.input_pins_of(0);
  const auto buf = nl.add_comb("late_buf", mt::CellFunc::Buf, 1);
  const auto n = nl.add_net("late_net");
  nl.connect(n, nl.input_pin(buf, 0));
  const auto span = nl.input_pins_of(buf);
  ASSERT_EQ(span.size(), 1u);
  EXPECT_EQ(span[0], nl.input_pin(buf, 0));
}
