// Tests for the flow::Checkpoint stage-restart layer: fault-spec parsing,
// crash/resume at every stage and ECO-iteration boundary (byte-identical
// to an uninterrupted run), corruption/version-mismatch degradation,
// cross-pool-size resume, cleanup-on-finish and trace instrumentation.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/flow.hpp"
#include "exec/flow_cache.hpp"
#include "exec/pool.hpp"
#include "gen/designs.hpp"
#include "io/reports.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

namespace fs = std::filesystem;
namespace mc = m3d::core;
namespace me = m3d::exec;
namespace mf = m3d::flow;
namespace mg = m3d::gen;
namespace mn = m3d::netlist;
namespace mu = m3d::util;

#include "sanitize.hpp"  // self-shrink under TSan/ASan

namespace {

constexpr double kWideScale = M3D_TEST_WIDE_SCALE;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mu::set_log_level(mu::LogLevel::Silent);
    dir_ = ::testing::TempDir() + "m3d_ckpt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    mf::fault_disarm();
    mf::clear_interrupt();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

mn::Netlist tiny(const char* which = "aes", double scale = 0.05) {
  mg::GenOptions g;
  g.scale = scale;
  return mg::make_design(which, g);
}

mc::FlowOptions tiny_opts(double period = 1.2) {
  mc::FlowOptions o;
  o.clock_period_ns = period;
  o.opt.max_sizing_rounds = 2;
  o.repart.max_iters = 3;
  return o;
}

// The strongest equality we can state between two flow results: identical
// metrics CSV rendering, identical result netlist (fingerprint covers
// every cell, net, pin and activity), identical per-cell tier / exact
// position bits, and identical per-stage stats.
void expect_flow_equal(const mc::FlowResult& a, const mc::FlowResult& b) {
  EXPECT_EQ(m3d::io::metrics_csv({a.metrics}),
            m3d::io::metrics_csv({b.metrics}));
  EXPECT_EQ(me::FlowCache::fingerprint(a.design.nl()),
            me::FlowCache::fingerprint(b.design.nl()));
  EXPECT_EQ(a.repart.iterations, b.repart.iterations);
  EXPECT_EQ(a.repart.cells_moved, b.repart.cells_moved);
  EXPECT_EQ(a.repart.moves_undone, b.repart.moves_undone);
  EXPECT_EQ(a.timing_part.pinned_cells, b.timing_part.pinned_cells);
  EXPECT_EQ(a.opt.cells_upsized, b.opt.cells_upsized);
  EXPECT_EQ(a.opt.cells_downsized, b.opt.cells_downsized);
  EXPECT_EQ(a.opt.buffers_added, b.opt.buffers_added);
  ASSERT_EQ(a.design.nl().cell_count(), b.design.nl().cell_count());
  for (mn::CellId c = 0; c < a.design.nl().cell_count(); ++c) {
    ASSERT_EQ(a.design.tier(c), b.design.tier(c)) << "cell " << c;
    ASSERT_EQ(a.design.pos(c).x, b.design.pos(c).x) << "cell " << c;
    ASSERT_EQ(a.design.pos(c).y, b.design.pos(c).y) << "cell " << c;
    ASSERT_EQ(a.design.clock_latency(c), b.design.clock_latency(c))
        << "cell " << c;
  }
}

std::size_t checkpoint_files(const std::string& dir) {
  std::size_t n = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec))
    if (it->path().extension() == ".m3dckpt") ++n;
  return n;
}

}  // namespace

// ---- names & specs -------------------------------------------------------

TEST_F(CheckpointTest, StageNamesRoundTrip) {
  for (int i = 0; i < mf::kStageCount; ++i) {
    const auto s = static_cast<mf::Stage>(i);
    mf::Stage parsed;
    ASSERT_TRUE(mf::parse_stage(mf::stage_name(s), &parsed))
        << mf::stage_name(s);
    EXPECT_EQ(parsed, s);
  }
  mf::Stage ignored;
  EXPECT_FALSE(mf::parse_stage("", &ignored));
  EXPECT_FALSE(mf::parse_stage("gds_out", &ignored));
}

TEST_F(CheckpointTest, ParseFaultSpec) {
  mf::Stage s;
  int iter = -1;
  ASSERT_TRUE(mf::parse_fault_spec("cts", &s, &iter));
  EXPECT_EQ(s, mf::Stage::Cts);
  EXPECT_EQ(iter, 0);
  ASSERT_TRUE(mf::parse_fault_spec("repart_eco:2", &s, &iter));
  EXPECT_EQ(s, mf::Stage::RepartEco);
  EXPECT_EQ(iter, 2);
  ASSERT_TRUE(mf::parse_fault_spec("repart_fixup:998", &s, &iter));
  EXPECT_EQ(iter, 998);

  for (const char* bad : {"", "bogus", "cts:", "cts:0", "cts:-1", "cts:x",
                          "cts:999", ":1", "repart_eco:1:2"})
    EXPECT_FALSE(mf::parse_fault_spec(bad, &s, &iter)) << bad;
}

// ---- crash/resume at every boundary --------------------------------------

TEST_F(CheckpointTest, ResumeAtEveryStageBoundaryIsByteIdentical) {
  // The acceptance property of the whole layer: kill the Hetero3D flow at
  // each of its nine stage-completion boundaries, resume, and demand the
  // final result byte-identical to a never-interrupted run.
  const auto nl = tiny();
  auto opt = tiny_opts();
  const auto ref = mc::run_flow(nl, mc::Config::Hetero3D, opt);

  opt.checkpoint_dir = dir_;
  for (int i = 0; i < mf::kStageCount; ++i) {
    const auto stage = static_cast<mf::Stage>(i);
    SCOPED_TRACE(mf::stage_name(stage));
    fs::remove_all(dir_);

    mf::fault_arm(stage);
    EXPECT_THROW(mc::run_flow(nl, mc::Config::Hetero3D, opt),
                 mf::FaultInjected);
    ASSERT_GE(checkpoint_files(dir_), static_cast<std::size_t>(i + 1));

    const auto resumed = mc::run_flow(nl, mc::Config::Hetero3D, opt);
    expect_flow_equal(ref, resumed);
    // The completed resume run cleans its checkpoints back up.
    EXPECT_EQ(checkpoint_files(dir_), 0u);
  }
}

TEST_F(CheckpointTest, ResumeMidEcoIterationIsByteIdentical) {
  // Iteration boundaries inside the two ECO loops: the resumed run
  // rebuilds routes + full STA and picks the loop up where it died — the
  // incremental-vs-full STA fingerprint check inside repartition_eco
  // guards that rebuild.
  const auto nl = tiny();
  auto opt = tiny_opts();
  const auto ref = mc::run_flow(nl, mc::Config::Hetero3D, opt);
  ASSERT_GE(ref.repart.iterations, 2) << "need a multi-iteration ECO";

  opt.checkpoint_dir = dir_;
  struct Boundary { mf::Stage stage; int iter; };
  for (const Boundary b : {Boundary{mf::Stage::RepartEco, 1},
                           Boundary{mf::Stage::RepartEco, 2},
                           Boundary{mf::Stage::RepartFixup, 1}}) {
    SCOPED_TRACE(std::string(mf::stage_name(b.stage)) + ":" +
                 std::to_string(b.iter));
    fs::remove_all(dir_);
    mf::fault_arm(b.stage, b.iter);
    EXPECT_THROW(mc::run_flow(nl, mc::Config::Hetero3D, opt),
                 mf::FaultInjected);
    const auto resumed = mc::run_flow(nl, mc::Config::Hetero3D, opt);
    expect_flow_equal(ref, resumed);
  }
}

TEST_F(CheckpointTest, ResumeRebuildsExplicitTierStack) {
  // An explicit FlowOptions::tiers stack must survive the resume: the
  // loader rebuilds the Design via design_for_flow, not the config's
  // default two-library mapping — with the wrong stack the restored
  // per-cell tiers would be out of range or mis-libbed.
  const auto nl = tiny();
  auto opt = tiny_opts();
  opt.tiers.resize(3);
  opt.tiers[0].tech = "12T";
  opt.tiers[1].tech = "9T";
  opt.tiers[2].tech = "9T";
  const auto ref = mc::run_flow(nl, mc::Config::ThreeD12T, opt);
  EXPECT_EQ(ref.design.num_tiers(), 3);

  opt.checkpoint_dir = dir_;
  for (const auto stage : {mf::Stage::Partition, mf::Stage::Cts}) {
    SCOPED_TRACE(mf::stage_name(stage));
    fs::remove_all(dir_);
    mf::fault_arm(stage);
    EXPECT_THROW(mc::run_flow(nl, mc::Config::ThreeD12T, opt),
                 mf::FaultInjected);
    const auto resumed = mc::run_flow(nl, mc::Config::ThreeD12T, opt);
    EXPECT_EQ(resumed.design.num_tiers(), 3);
    expect_flow_equal(ref, resumed);
  }
}

TEST_F(CheckpointTest, FaultFiresWithoutCheckpointDirectory) {
  // Kill points are independent of checkpointing: "the flow dies here"
  // must be testable on its own.
  const auto nl = tiny();
  const auto opt = tiny_opts();  // no checkpoint_dir
  mf::fault_arm(mf::Stage::Place);
  EXPECT_THROW(mc::run_flow(nl, mc::Config::Hetero3D, opt),
               mf::FaultInjected);
  // Disarmed after firing: the next run completes.
  const auto res = mc::run_flow(nl, mc::Config::Hetero3D, opt);
  EXPECT_GT(res.design.nl().cell_count(), 0);
}

// ---- corruption & version policy -----------------------------------------

TEST_F(CheckpointTest, CorruptedCheckpointDegradesToOlderThenCold) {
  const auto nl = tiny();
  auto opt = tiny_opts();
  const auto ref = mc::run_flow(nl, mc::Config::Hetero3D, opt);

  opt.checkpoint_dir = dir_;
  mf::fault_arm(mf::Stage::PostCtsOpt);
  EXPECT_THROW(mc::run_flow(nl, mc::Config::Hetero3D, opt),
               mf::FaultInjected);

  // Newest boundary is post_cts_opt (s05). Flip payload bytes: the
  // checksum rejects it and resume degrades to the cts boundary.
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir_))
    files.push_back(e.path());
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 2u);
  {
    std::fstream f(files.back(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    const char junk[4] = {'\x5a', '\x5a', '\x5a', '\x5a'};
    f.write(junk, sizeof junk);
  }
  const auto degraded = mc::run_flow(nl, mc::Config::Hetero3D, opt);
  expect_flow_equal(ref, degraded);

  // Corrupt every file (truncation this time): a full cold start, still
  // byte-identical, and never an error.
  mf::fault_arm(mf::Stage::PostCtsOpt);
  EXPECT_THROW(mc::run_flow(nl, mc::Config::Hetero3D, opt),
               mf::FaultInjected);
  for (const auto& e : fs::directory_iterator(dir_))
    fs::resize_file(e.path(), fs::file_size(e.path()) / 3);
  const auto cold = mc::run_flow(nl, mc::Config::Hetero3D, opt);
  expect_flow_equal(ref, cold);
}

TEST_F(CheckpointTest, VersionMismatchRecomputes) {
  const auto nl = tiny();
  auto opt = tiny_opts();
  const auto ref = mc::run_flow(nl, mc::Config::Hetero3D, opt);

  opt.checkpoint_dir = dir_;
  mf::fault_arm(mf::Stage::Cts);
  EXPECT_THROW(mc::run_flow(nl, mc::Config::Hetero3D, opt),
               mf::FaultInjected);

  // Bump the version field (bytes 8..11, after the magic) in every file:
  // a future-format checkpoint must read as "not mine", not crash.
  for (const auto& e : fs::directory_iterator(dir_)) {
    std::fstream f(e.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    const char v[4] = {'\x7f', '\x7f', '\x7f', '\x7f'};
    f.write(v, sizeof v);
  }
  const auto recomputed = mc::run_flow(nl, mc::Config::Hetero3D, opt);
  expect_flow_equal(ref, recomputed);
}

// ---- pool-size cross-resume (satellite: run under TSan too) ---------------

TEST_F(CheckpointTest, CheckpointCrossesPoolSizesByteIdentically) {
  // A checkpoint written at pool size 1 resumes at pool size 4 (and vice
  // versa) with byte-identical results: checkpoint state, like flow
  // results, is a pure function of (netlist, config, options) with every
  // pool field excluded from the key. Wide netlist so the 4-thread half
  // genuinely exercises the pooled kernels.
  const auto nl = tiny("netcard", kWideScale);
  me::Pool serial(1), wide(4);
  auto base = tiny_opts();

  auto ref_opt = base;
  ref_opt.pool = &wide;
  const auto ref = mc::run_flow(nl, mc::Config::Hetero3D, ref_opt);

  struct Cross { me::Pool* write; me::Pool* resume; };
  for (const Cross x : {Cross{&serial, &wide}, Cross{&wide, &serial}}) {
    SCOPED_TRACE(x.write == &serial ? "write@1 resume@4" : "write@4 resume@1");
    fs::remove_all(dir_);
    auto opt = base;
    opt.checkpoint_dir = dir_;
    opt.pool = x.write;
    mf::fault_arm(mf::Stage::Cts);
    EXPECT_THROW(mc::run_flow(nl, mc::Config::Hetero3D, opt),
                 mf::FaultInjected);
    opt.pool = x.resume;
    const auto resumed = mc::run_flow(nl, mc::Config::Hetero3D, opt);
    expect_flow_equal(ref, resumed);
  }
}

// ---- lifecycle & tracing --------------------------------------------------

TEST_F(CheckpointTest, KeepRetainsFilesAndCompletedRunResumesFromThem) {
  const auto nl = tiny();
  auto opt = tiny_opts();
  opt.checkpoint_dir = dir_;

  setenv("M3D_CHECKPOINT_KEEP", "1", 1);
  const auto ref = mc::run_flow(nl, mc::Config::Hetero3D, opt);
  unsetenv("M3D_CHECKPOINT_KEEP");
  EXPECT_GT(checkpoint_files(dir_), 0u);

  // Rerunning over the kept files resumes from the last boundary and
  // reproduces the run; without KEEP it then cleans the directory.
  const auto again = mc::run_flow(nl, mc::Config::Hetero3D, opt);
  expect_flow_equal(ref, again);
  EXPECT_EQ(checkpoint_files(dir_), 0u);
}

TEST_F(CheckpointTest, EmitsCheckpointTraceSpans) {
  const auto nl = tiny();
  auto opt = tiny_opts();
  opt.checkpoint_dir = dir_;

  const std::string path = ::testing::TempDir() + "m3d_ckpt_trace.json";
  mu::trace_begin(path);
  mf::fault_arm(mf::Stage::Partition);
  try {
    mc::run_flow(nl, mc::Config::Hetero3D, opt);
    FAIL() << "fault did not fire";
  } catch (const mf::FaultInjected&) {
  }
  { mc::run_flow(nl, mc::Config::Hetero3D, opt); }
  mu::trace_end();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"checkpoint_write\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint_resume\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint_resume_wns_ns\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, EnvCheckpointDirIsPickedUpByDefault) {
  // FlowOptions::checkpoint_dir empty + M3D_CHECKPOINT_DIR set is the
  // operational path CI uses.
  const auto nl = tiny();
  const auto opt = tiny_opts();
  const auto ref = mc::run_flow(nl, mc::Config::Hetero3D, opt);

  setenv("M3D_CHECKPOINT_DIR", dir_.c_str(), 1);
  mf::fault_arm(mf::Stage::PostPlaceOpt);
  EXPECT_THROW(mc::run_flow(nl, mc::Config::Hetero3D, opt),
               mf::FaultInjected);
  EXPECT_GT(checkpoint_files(dir_), 0u);
  const auto resumed = mc::run_flow(nl, mc::Config::Hetero3D, opt);
  unsetenv("M3D_CHECKPOINT_DIR");
  expect_flow_equal(ref, resumed);
}

// ---- cooperative interruption (SIGINT/SIGTERM, m3dd drain) ---------------

TEST_F(CheckpointTest, InterruptFlagMechanics) {
  EXPECT_FALSE(mf::interrupt_requested());
  mf::request_interrupt();
  EXPECT_TRUE(mf::interrupt_requested());
  mf::clear_interrupt();
  EXPECT_FALSE(mf::interrupt_requested());
}

TEST_F(CheckpointTest, InterruptStopsAtBoundaryAndResumeIsByteIdentical) {
  // The drain story: a signal (or m3dd's begin_drain) raises the
  // interrupt flag; a checkpointing flow stops at its next stage boundary
  // *after* the checkpoint is flushed, throwing flow::Interrupted. A
  // later run resumes from that flushed state and must be byte-identical
  // to a never-interrupted run.
  const auto nl = tiny();
  auto opt = tiny_opts();
  const auto ref = mc::run_flow(nl, mc::Config::Hetero3D, opt);

  opt.checkpoint_dir = dir_;
  mf::request_interrupt();
  try {
    mc::run_flow(nl, mc::Config::Hetero3D, opt);
    FAIL() << "expected flow::Interrupted";
  } catch (const mf::Interrupted& e) {
    // The very first boundary fires — deterministically Synth.
    EXPECT_EQ(e.stage, mf::Stage::Synth);
    EXPECT_NE(std::string(e.what()).find("interrupted"), std::string::npos);
  }
  // The promise of "flushed before thrown": at least one checkpoint file.
  EXPECT_GE(checkpoint_files(dir_), 1u);

  mf::clear_interrupt();
  const auto resumed = mc::run_flow(nl, mc::Config::Hetero3D, opt);
  expect_flow_equal(ref, resumed);
  EXPECT_EQ(checkpoint_files(dir_), 0u);  // completed run cleaned up
}

TEST_F(CheckpointTest, InterruptWithoutCheckpointDirRunsToCompletion) {
  // No checkpoint directory means nothing to resume from, so aborting
  // would just throw work away — the flag only stops resumable flows.
  const auto nl = tiny();
  const auto opt = tiny_opts();
  mf::request_interrupt();
  const auto res = mc::run_flow(nl, mc::Config::Hetero3D, opt);
  EXPECT_GT(res.design.nl().cell_count(), 0);
  EXPECT_TRUE(mf::interrupt_requested());  // flag persists until cleared
}
