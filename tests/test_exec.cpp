// Tests for the m3d::exec subsystem: work-stealing pool (stress, nested
// submission, exceptions), task-graph dependency order, flow-cache
// hit/join/eviction behaviour, sweep determinism across thread counts,
// per-worker rng streams, and the chrome-trace sink.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include "common.hpp"  // bench helpers (run_sweep determinism test)
#include "core/flow.hpp"
#include "exec/flow_cache.hpp"
#include "exec/pool.hpp"
#include "exec/task_graph.hpp"
#include "gen/designs.hpp"
#include "io/reports.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace me = m3d::exec;
namespace mc = m3d::core;
namespace mg = m3d::gen;
namespace mn = m3d::netlist;
namespace mu = m3d::util;

#include "sanitize.hpp"  // self-shrink under TSan/ASan

namespace {

constexpr double kWideScale = M3D_TEST_WIDE_SCALE;

class Quiet : public ::testing::Test {
 protected:
  void SetUp() override { mu::set_log_level(mu::LogLevel::Silent); }
};

using ExecPool = Quiet;
using ExecTaskGraph = Quiet;
using ExecFlowCache = Quiet;
using ExecSweep = Quiet;
using ExecTrace = Quiet;

mn::Netlist tiny(const char* which = "aes", double scale = 0.04) {
  mg::GenOptions g;
  g.scale = scale;
  return mg::make_design(which, g);
}

mc::FlowOptions tiny_opts(double period = 1.2) {
  mc::FlowOptions o;
  o.clock_period_ns = period;
  o.opt.max_sizing_rounds = 2;
  o.repart.max_iters = 3;
  return o;
}

}  // namespace

// ---- Pool ----------------------------------------------------------------

TEST_F(ExecPool, StressManyTasksManyThreads) {
  for (int threads : {1, 2, 4, 8}) {
    me::Pool pool(threads);
    ASSERT_EQ(pool.size(), threads);
    std::atomic<int> counter{0};
    std::vector<std::future<int>> futures;
    const int n = 2000;
    futures.reserve(n);
    for (int i = 0; i < n; ++i)
      futures.push_back(pool.submit([&counter, i] {
        counter.fetch_add(1);
        return i;
      }));
    long long sum = 0;
    for (auto& f : futures) sum += pool.get(std::move(f));
    EXPECT_EQ(counter.load(), n);
    EXPECT_EQ(sum, static_cast<long long>(n) * (n - 1) / 2);
  }
}

TEST_F(ExecPool, ParallelForCoversRangeExactlyOnce) {
  me::Pool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](int i) { hits[static_cast<size_t>(i)]++; },
                    7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ExecPool, NestedSubmissionDoesNotDeadlock) {
  // A task that fans out subtasks and waits for them — even on a
  // single-worker pool the helping wait must make progress.
  for (int threads : {1, 4}) {
    me::Pool pool(threads);
    auto outer = pool.submit([&pool] {
      std::vector<std::future<int>> inner;
      for (int i = 0; i < 8; ++i)
        inner.push_back(pool.submit([i] { return i * i; }));
      int sum = 0;
      for (auto& f : inner) sum += pool.get(std::move(f));
      return sum;
    });
    EXPECT_EQ(pool.get(std::move(outer)), 140);
  }
}

TEST_F(ExecPool, ExceptionsPropagateThroughFutures) {
  me::Pool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.get(std::move(f)), std::runtime_error);

  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](int i) {
                          if (i == 31) throw std::runtime_error("pfor");
                        }),
      std::runtime_error);
}

TEST_F(ExecPool, WorkerIndexAndRngStreams) {
  me::Pool pool(3);
  EXPECT_EQ(me::Pool::worker_index(), -1);  // not a worker thread
  std::mutex mu;
  std::set<int> indices;
  std::set<std::uint64_t> streams;
  pool.parallel_for(0, 64, [&](int) {
    const int w = me::Pool::worker_index();
    std::lock_guard<std::mutex> lock(mu);
    if (w >= 0) {
      indices.insert(w);
      streams.insert(mu::thread_stream_id());
    }
  });
  for (int w : indices) EXPECT_LT(w, 3);
  // Worker w uses rng stream w+1 (0 is reserved for non-workers).
  for (auto s : streams) EXPECT_GE(s, 1u);
}

// ---- rng streams ---------------------------------------------------------

TEST(ExecRng, StreamsAreDeterministicAndIndependent) {
  mu::Rng a0 = mu::Rng::stream(42, 0);
  mu::Rng a0_again = mu::Rng::stream(42, 0);
  mu::Rng a1 = mu::Rng::stream(42, 1);
  mu::Rng b0 = mu::Rng::stream(43, 0);
  const std::uint64_t x = a0.next_u64();
  EXPECT_EQ(x, a0_again.next_u64());  // same (seed, id) → same stream
  EXPECT_NE(x, a1.next_u64());        // different id → different stream
  EXPECT_NE(x, b0.next_u64());        // different seed → different stream
}

// ---- TaskGraph -----------------------------------------------------------

TEST_F(ExecTaskGraph, RespectsDependencyOrder) {
  me::Pool pool(4);
  me::TaskGraph graph;
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  // Diamond over a chain:  0 → {1, 2} → 3 → 4.
  const auto a = graph.add("a", [&] { record(0); });
  const auto b = graph.add("b", [&] { record(1); }, {a});
  const auto c = graph.add("c", [&] { record(2); }, {a});
  const auto d = graph.add("d", [&] { record(3); }, {b, c});
  graph.add("e", [&] { record(4); }, {d});
  graph.run(pool);

  ASSERT_EQ(order.size(), 5u);
  auto pos = [&](int id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
  EXPECT_LT(pos(3), pos(4));
}

TEST_F(ExecTaskGraph, WideGraphRunsEveryNode) {
  me::Pool pool(4);
  me::TaskGraph graph;
  std::atomic<int> ran{0};
  const auto root = graph.add("root", [&] { ran++; });
  std::vector<me::TaskGraph::NodeId> mids;
  for (int i = 0; i < 50; ++i)
    mids.push_back(graph.add("mid", [&] { ran++; }, {root}));
  graph.add("sink", [&] { ran++; }, mids);
  graph.run(pool);
  EXPECT_EQ(ran.load(), 52);
}

TEST_F(ExecTaskGraph, FailedNodeSkipsDownstreamAndRethrows) {
  me::Pool pool(2);
  me::TaskGraph graph;
  std::atomic<int> ran{0};
  const auto a = graph.add("a", [&] { ran++; });
  const auto bad =
      graph.add("bad", [&] { throw std::runtime_error("node"); }, {a});
  graph.add("after_bad", [&] { ran++; }, {bad});   // must not run
  graph.add("sibling", [&] { ran++; }, {a});       // unaffected branch
  EXPECT_THROW(graph.run(pool), std::runtime_error);
  EXPECT_EQ(ran.load(), 2);  // a + sibling
}

TEST_F(ExecTaskGraph, RejectsForwardDeps) {
  me::TaskGraph graph;
  EXPECT_THROW(graph.add("x", [] {}, {0}), mu::Error);
}

// ---- FlowCache -----------------------------------------------------------

TEST_F(ExecFlowCache, HitOnIdenticalKeyMissOnDifferent) {
  const auto nl = tiny();
  me::FlowCache cache(8);
  const auto opt = tiny_opts();

  auto r1 = cache.get_or_run(nl, mc::Config::TwoD12T, opt);
  auto r2 = cache.get_or_run(nl, mc::Config::TwoD12T, opt);
  EXPECT_EQ(r1.get(), r2.get());  // same shared result object
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Any knob change is a different key.
  auto opt2 = opt;
  opt2.clock_period_ns *= 1.25;
  cache.get_or_run(nl, mc::Config::TwoD12T, opt2);
  EXPECT_EQ(cache.stats().misses, 2u);

  // A different config is a different key.
  cache.get_or_run(nl, mc::Config::TwoD9T, opt);
  EXPECT_EQ(cache.stats().misses, 3u);

  // A structurally different netlist is a different key.
  cache.get_or_run(tiny("ldpc", 0.04), mc::Config::TwoD12T, opt);
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.size(), 4u);
}

TEST_F(ExecFlowCache, CornerSpecsNeverShareAnEntry) {
  // Regression for the option-hash coverage of FlowOptions::sta_corners:
  // a multi-corner flow makes different ECO decisions and reports
  // different signoff metrics, so serving it a single-corner cached flow
  // (or vice versa) would be silently wrong.
  const auto base = tiny_opts();
  auto sweep = base;
  sweep.sta_corners.count = 16;
  sweep.sta_corners.sigma[0] = 0.03;
  sweep.sta_corners.sigma[1] = 0.08;
  sweep.sta_corners.derate[1] = 1.05;
  EXPECT_NE(me::FlowCache::options_hash(base),
            me::FlowCache::options_hash(sweep));

  // Every corner field is load-bearing for the key.
  for (auto tweak : std::vector<std::function<void(mc::FlowOptions&)>>{
           [](mc::FlowOptions& o) { o.sta_corners.count = 32; },
           [](mc::FlowOptions& o) { o.sta_corners.sigma[1] = 0.1; },
           [](mc::FlowOptions& o) { o.sta_corners.derate[0] = 1.02; },
           [](mc::FlowOptions& o) { o.sta_corners.seed += 1; }}) {
    auto varied = sweep;
    tweak(varied);
    EXPECT_NE(me::FlowCache::options_hash(sweep),
              me::FlowCache::options_hash(varied));
  }

  // And end to end: two different corner sets miss each other.
  const auto nl = tiny();
  me::FlowCache cache(8);
  cache.get_or_run(nl, mc::Config::Hetero3D, base);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.get_or_run(nl, mc::Config::Hetero3D, sweep);
  EXPECT_EQ(cache.stats().misses, 2u);
  cache.get_or_run(nl, mc::Config::Hetero3D, sweep);
  EXPECT_EQ(cache.stats().hits, 1u);
  // The sweep's result actually carries the multi-corner view.
  const auto res = cache.lookup(nl, mc::Config::Hetero3D, sweep);
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(res->metrics.sta_corners, 16);
  EXPECT_LE(res->metrics.wns_worst_corner_ns, res->metrics.wns_ns);
  const auto res1 = cache.lookup(nl, mc::Config::Hetero3D, base);
  ASSERT_NE(res1, nullptr);
  EXPECT_EQ(res1->metrics.sta_corners, 1);
  EXPECT_EQ(res1->metrics.wns_worst_corner_ns, res1->metrics.wns_ns);
}

TEST_F(ExecFlowCache, EvictsLeastRecentlyUsed) {
  const auto nl = tiny();
  me::FlowCache cache(2);
  auto o1 = tiny_opts(1.0), o2 = tiny_opts(1.1), o3 = tiny_opts(1.2);
  cache.get_or_run(nl, mc::Config::TwoD12T, o1);
  cache.get_or_run(nl, mc::Config::TwoD12T, o2);
  cache.get_or_run(nl, mc::Config::TwoD12T, o1);  // o1 now most recent
  cache.get_or_run(nl, mc::Config::TwoD12T, o3);  // evicts o2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.lookup(nl, mc::Config::TwoD12T, o1), nullptr);
  EXPECT_EQ(cache.lookup(nl, mc::Config::TwoD12T, o2), nullptr);
  EXPECT_NE(cache.lookup(nl, mc::Config::TwoD12T, o3), nullptr);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(ExecFlowCache, ConcurrentSameKeyComputesOnce) {
  const auto nl = tiny();
  me::FlowCache cache(8);
  me::Pool pool(4);
  const auto opt = tiny_opts();
  std::vector<std::future<me::FlowCache::ResultPtr>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(pool.submit(
        [&] { return cache.get_or_run(nl, mc::Config::TwoD12T, opt); }));
  std::set<const mc::FlowResult*> distinct;
  for (auto& f : futures) distinct.insert(pool.get(std::move(f)).get());
  EXPECT_EQ(distinct.size(), 1u);  // one computation, everyone shares it
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits + s.joins, 7u);
}

TEST_F(ExecFlowCache, FingerprintSeparatesNetlists) {
  const auto a = tiny("aes", 0.04);
  const auto b = tiny("ldpc", 0.04);
  EXPECT_EQ(me::FlowCache::fingerprint(a), me::FlowCache::fingerprint(a));
  EXPECT_NE(me::FlowCache::fingerprint(a), me::FlowCache::fingerprint(b));

  auto c = a;
  c.set_activity(0, c.net(0).activity + 0.01);  // any electrical change shows up
  EXPECT_NE(me::FlowCache::fingerprint(a), me::FlowCache::fingerprint(c));
}

TEST_F(ExecFlowCache, DiskPersistsAcrossInstances) {
  const std::string dir = ::testing::TempDir() + "m3d_flow_cache_disk";
  std::filesystem::remove_all(dir);
  setenv("M3D_FLOW_CACHE_DIR", dir.c_str(), 1);

  const auto nl = tiny("cpu", 0.04);
  const auto opt = tiny_opts();
  me::FlowCache first(8);
  const auto computed = first.get_or_run(nl, mc::Config::Hetero3D, opt);
  EXPECT_EQ(first.stats().misses, 1u);
  EXPECT_EQ(first.stats().disk_writes, 1u);

  // A fresh cache instance stands in for a new process: its memory miss
  // must be served by deserializing the persisted file, and the loaded
  // result must be indistinguishable from the computed one.
  me::FlowCache second(8);
  const auto loaded = second.get_or_run(nl, mc::Config::Hetero3D, opt);
  EXPECT_EQ(second.stats().misses, 1u);
  EXPECT_EQ(second.stats().disk_hits, 1u);
  EXPECT_EQ(second.stats().disk_writes, 0u);
  EXPECT_EQ(m3d::io::metrics_csv({computed->metrics}),
            m3d::io::metrics_csv({loaded->metrics}));
  EXPECT_EQ(computed->repart.cells_moved, loaded->repart.cells_moved);
  EXPECT_EQ(computed->timing_part.pinned_cells,
            loaded->timing_part.pinned_cells);
  EXPECT_EQ(computed->opt.buffers_added, loaded->opt.buffers_added);
  ASSERT_EQ(computed->design.nl().cell_count(),
            loaded->design.nl().cell_count());
  for (mn::CellId c = 0; c < computed->design.nl().cell_count(); ++c) {
    ASSERT_EQ(computed->design.tier(c), loaded->design.tier(c));
    ASSERT_EQ(computed->design.pos(c).x, loaded->design.pos(c).x);
    ASSERT_EQ(computed->design.pos(c).y, loaded->design.pos(c).y);
  }

  // A corrupted file is a miss, not an error: truncate the single entry
  // and make sure a third instance silently recomputes.
  for (const auto& e : std::filesystem::directory_iterator(dir))
    std::filesystem::resize_file(e.path(),
                                 std::filesystem::file_size(e.path()) / 2);
  me::FlowCache third(8);
  const auto recomputed = third.get_or_run(nl, mc::Config::Hetero3D, opt);
  EXPECT_EQ(third.stats().disk_hits, 0u);
  EXPECT_EQ(third.stats().disk_writes, 1u);  // rewrote a good entry
  EXPECT_EQ(m3d::io::metrics_csv({computed->metrics}),
            m3d::io::metrics_csv({recomputed->metrics}));

  unsetenv("M3D_FLOW_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

TEST_F(ExecFlowCache, PrewarmClaimsOnceThenServesHits) {
  const auto nl = tiny();
  me::FlowCache cache(8);
  const auto opt = tiny_opts();

  EXPECT_TRUE(cache.prewarm(nl, mc::Config::TwoD12T, opt));   // computed
  EXPECT_FALSE(cache.prewarm(nl, mc::Config::TwoD12T, opt));  // already there
  EXPECT_EQ(cache.stats().misses, 1u);

  // The warmed entry serves get_or_run as an ordinary hit, and the result
  // matches an independent computation of the same key.
  const auto warmed = cache.get_or_run(nl, mc::Config::TwoD12T, opt);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  me::FlowCache fresh(8);
  const auto direct = fresh.get_or_run(nl, mc::Config::TwoD12T, opt);
  EXPECT_EQ(m3d::io::metrics_csv({warmed->metrics}),
            m3d::io::metrics_csv({direct->metrics}));
}

TEST_F(ExecFlowCache, SpeculativeFrequencySearchMatchesSerial) {
  // find_max_frequency speculates the two possible next binary-search
  // midpoints on spare workers (claimed via prewarm, never joined), while
  // the on-path evaluation may join or — when the evaluating thread is
  // itself mid-flow from helping the pool — bypass an in-flight entry.
  // Whatever interleaving occurs, the search must follow the exact serial
  // path. This doubles as the regression test for the in-flight self-join
  // deadlock: owners of in-flight entries never block on other entries.
  const auto nl = tiny();
  const auto opt = tiny_opts();

  // Caches before pools: lingering speculative tasks reference the cache,
  // and the pool destructor joins the workers running them.
  me::FlowCache serial_cache(16);
  me::Pool serial_pool(1);
  const me::Ctx serial{&serial_pool, &serial_cache};
  const double f1 = mc::find_max_frequency(nl, mc::Config::TwoD12T, opt, 0.4,
                                           4.0, 4, 0.05, &serial);

  me::FlowCache wide_cache(16);
  me::Pool wide_pool(4);
  const me::Ctx wide{&wide_pool, &wide_cache};
  const double f4 = mc::find_max_frequency(nl, mc::Config::TwoD12T, opt, 0.4,
                                           4.0, 4, 0.05, &wide);

  EXPECT_EQ(f1, f4);
  // Every key the serial search computed must resolve in the wide cache
  // too (either the search or a speculative warm-up computed it).
  const auto s = wide_cache.stats();
  EXPECT_GE(s.misses, serial_cache.stats().misses);
}

TEST_F(ExecSweep, RunFlowByteIdenticalAcrossPoolSizes) {
  // The largest generated netlist, scaled to clear the parallel-kernel
  // thresholds so the 4-thread run genuinely exercises the pooled paths
  // in placement, FM and STA.
  const auto nl = tiny("netcard", kWideScale);
  me::Pool serial(1), wide(4);
  auto o1 = tiny_opts();
  o1.pool = &serial;
  auto o4 = tiny_opts();
  o4.pool = &wide;
  const auto a = mc::run_flow(nl, mc::Config::Hetero3D, o1);
  const auto b = mc::run_flow(nl, mc::Config::Hetero3D, o4);
  EXPECT_EQ(m3d::io::metrics_csv({a.metrics}),
            m3d::io::metrics_csv({b.metrics}));
  ASSERT_EQ(a.design.nl().cell_count(), b.design.nl().cell_count());
  for (mn::CellId c = 0; c < a.design.nl().cell_count(); ++c) {
    ASSERT_EQ(a.design.tier(c), b.design.tier(c)) << "cell " << c;
    ASSERT_EQ(a.design.pos(c).x, b.design.pos(c).x) << "cell " << c;
    ASSERT_EQ(a.design.pos(c).y, b.design.pos(c).y) << "cell " << c;
  }
}

// ---- run_sweep determinism ----------------------------------------------

TEST_F(ExecSweep, ResultsIdenticalAtOneAndManyThreads) {
  // The acceptance property of the whole subsystem: a sweep fanned across
  // many workers is bit-identical to the serial sweep. Uses the real
  // bench path (build → frequency search → flows) at a tiny scale.
  setenv("M3D_BENCH_SCALE", "0.04", 1);

  m3d::bench::SweepOptions serial;
  serial.netlists = {"aes"};
  serial.configs = {mc::Config::TwoD12T, mc::Config::Hetero3D};
  serial.threads = 1;
  me::FlowCache cache_serial(16);
  serial.cache = &cache_serial;

  auto parallel = serial;
  const int hw = me::Pool::default_threads();
  parallel.threads = hw > 1 ? hw : 4;
  me::FlowCache cache_parallel(16);
  parallel.cache = &cache_parallel;

  const auto a = m3d::bench::run_sweep(serial);
  const auto b = m3d::bench::run_sweep(parallel);
  unsetenv("M3D_BENCH_SCALE");

  ASSERT_EQ(a.size(), b.size());
  std::vector<mc::DesignMetrics> ma, mb;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].netlist, b[i].netlist);
    EXPECT_EQ(a[i].cfg, b[i].cfg);
    EXPECT_EQ(a[i].period_ns, b[i].period_ns);  // exact, not approximate
    ma.push_back(a[i].metrics());
    mb.push_back(b[i].metrics());
  }
  // Byte-identical CSV renderings — the strongest equality we can state.
  EXPECT_EQ(m3d::io::metrics_csv(ma), m3d::io::metrics_csv(mb));
}

// ---- trace sink ----------------------------------------------------------

TEST_F(ExecTrace, EmitsParseableChromeTrace) {
  const std::string path = ::testing::TempDir() + "m3d_trace_test.json";
  mu::trace_begin(path);
  {
    mu::TraceSpan outer("outer", "detail \"quoted\"");
    mu::TraceSpan inner("inner");
    mu::trace_counter("counter", 3.5);
    mu::trace_instant("marker");
  }
  mu::trace_end();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // escaping
  // Balanced braces/brackets — cheap structural sanity of the JSON.
  long depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char ch : json) {
    if (escaped) { escaped = false; continue; }
    if (ch == '\\') { escaped = true; continue; }
    if (ch == '"') in_string = !in_string;
    if (in_string) continue;
    if (ch == '{' || ch == '[') depth++;
    if (ch == '}' || ch == ']') depth--;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());

  // Flow stages appear as spans when tracing wraps a flow.
  mu::trace_begin(path);
  { mc::run_flow(tiny(), mc::Config::Hetero3D, tiny_opts()); }
  mu::trace_end();
  std::ifstream in2(path);
  ASSERT_TRUE(in2.good());
  std::stringstream ss2;
  ss2 << in2.rdbuf();
  const std::string flow_json = ss2.str();
  for (const char* stage :
       {"\"flow\"", "\"synth\"", "\"place\"", "\"partition\"",
        "\"post_place_opt\"", "\"cts\"", "\"post_cts_opt\"",
        "\"repartition_eco\"", "\"finalize\""})
    EXPECT_NE(flow_json.find(stage), std::string::npos) << stage;
  std::remove(path.c_str());
}

// ---- service-facing observability (PR-5 satellites) ----------------------

TEST_F(ExecPool, PendingCountsQueuedTasks) {
  // pending() is the m3dd stats verb's load signal: tasks submitted but
  // not yet picked up. Block the only worker, stack up tasks behind it,
  // and watch the count rise and drain.
  me::Pool pool(1);
  EXPECT_EQ(pool.pending(), 0);

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<bool> entered{false};
  auto blocker = pool.submit([&] {
    entered.store(true);
    opened.wait();
  });
  while (!entered.load()) std::this_thread::yield();
  EXPECT_EQ(pool.pending(), 0);  // the blocker was picked up, not queued

  constexpr int kQueued = 5;
  std::vector<std::future<void>> fs;
  fs.reserve(kQueued);
  for (int i = 0; i < kQueued; ++i)
    fs.push_back(pool.submit([&] { opened.wait(); }));
  EXPECT_EQ(pool.pending(), kQueued);

  gate.set_value();
  for (auto& f : fs) pool.get(std::move(f));
  pool.get(std::move(blocker));
  EXPECT_EQ(pool.pending(), 0);
}

TEST_F(ExecFlowCache, StatsSnapshotAccountsUnderServiceContention) {
  // The daemon shape: many client threads hammering prewarm / lookup /
  // get_or_run on a small hot key set while another thread polls
  // stats_snapshot() (which must never take the cache lock — a stats verb
  // can't stall behind a running flow). Accounting identity at the end:
  // every get_or_run lands in exactly one of hits/joins/misses/bypasses
  // and every accepted prewarm is one miss.
  unsetenv("M3D_FLOW_CACHE_DIR");  // keep the disk tier out of the counts
  const auto a = tiny("aes", 0.04);
  const auto b = tiny("ldpc", 0.04);
  me::FlowCache cache(16);
  const auto opt = tiny_opts();

  std::atomic<int> claims{0};
  std::atomic<int> gets{0};
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      const auto s = cache.stats_snapshot();
      // Monotone counters: a snapshot can never see more claims resolved
      // than requests issued (relaxed loads, but each counter is atomic).
      EXPECT_LE(s.evictions, s.misses);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 6; ++i) {
        const auto& nl = ((i + t) % 2) ? a : b;
        if (i % 3 == 0) {
          if (cache.prewarm(nl, mc::Config::Hetero3D, opt))
            claims.fetch_add(1);
        } else {
          auto r = cache.get_or_run(nl, mc::Config::Hetero3D, opt);
          EXPECT_NE(r, nullptr);
          gets.fetch_add(1);
        }
        cache.lookup(nl, mc::Config::Hetero3D, opt);  // stats-neutral
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  poller.join();

  const auto s = cache.stats_snapshot();
  EXPECT_EQ(s.hits + s.joins + s.misses + s.bypasses,
            static_cast<std::uint64_t>(gets.load() + claims.load()));
  EXPECT_EQ(s.bypasses, 0u);  // no nested requests in this shape
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(cache.size(), 2u);  // two hot keys, each computed once...
  EXPECT_LE(s.misses, static_cast<std::uint64_t>(2 + claims.load()));

  // stats() remains an alias of the snapshot.
  const auto alias = cache.stats();
  EXPECT_EQ(alias.hits, s.hits);
  EXPECT_EQ(alias.misses, s.misses);
}

TEST_F(ExecFlowCache, PrewarmAndLookupSameKeyNeverDeadlock) {
  // Regression stress for the prewarm claim-or-skip path under the
  // contention m3dd generates: every thread races to claim the same two
  // keys; exactly one claim per key may win, everyone else must either
  // skip (prewarm == false) or join/hit via get_or_run — and nobody may
  // wedge waiting on themselves.
  unsetenv("M3D_FLOW_CACHE_DIR");
  const auto a = tiny("aes", 0.04);
  const auto b = tiny("ldpc", 0.04);
  me::FlowCache cache(8);
  const auto opt = tiny_opts();

  std::atomic<int> wins_a{0};
  std::atomic<int> wins_b{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      if (cache.prewarm(a, mc::Config::TwoD12T, opt)) wins_a.fetch_add(1);
      if (cache.prewarm(b, mc::Config::TwoD12T, opt)) wins_b.fetch_add(1);
      auto ra = cache.get_or_run(a, mc::Config::TwoD12T, opt);
      auto rb = cache.get_or_run(b, mc::Config::TwoD12T, opt);
      EXPECT_NE(ra, nullptr);
      EXPECT_NE(rb, nullptr);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(wins_a.load(), 1);
  EXPECT_EQ(wins_b.load(), 1);
  const auto s = cache.stats_snapshot();
  EXPECT_EQ(s.misses, 2u);  // one claim per key; everyone else shared
  EXPECT_EQ(s.hits + s.joins, 16u);
  EXPECT_EQ(s.bypasses, 0u);
  // And the shared results are the same objects every requester saw.
  EXPECT_EQ(cache.size(), 2u);
}

// ---- speculative worklist ------------------------------------------------

#include "exec/worklist.hpp"

namespace {

/// Toy speculative client over n items: priority order is (prio desc,
/// id asc), conflict neighborhood of a commit is {item, item+1 mod n}.
/// Every hook is deterministic, so the committed sequence and checksum
/// must be identical at any pool size.
struct ToyWorklist {
  int n;
  std::vector<int> prio;
  std::vector<char> committed;
  me::EpochMarks marks, predicted;
  std::vector<long long> slot_val;
  std::vector<int> seq;
  long long sum = 0;

  explicit ToyWorklist(int n_, bool flat_priority)
      : n(n_), prio(static_cast<std::size_t>(n_)),
        committed(static_cast<std::size_t>(n_), 0), slot_val(64, 0) {
    for (int i = 0; i < n; ++i)
      prio[static_cast<std::size_t>(i)] = flat_priority ? 0 : (i * 37) % 101;
    marks.reset(static_cast<std::size_t>(n));
    predicted.reset(static_cast<std::size_t>(n));
  }

  template <typename Skip>
  int best(Skip&& skip) const {
    int bi = -1;
    for (int i = 0; i < n; ++i) {
      if (committed[static_cast<std::size_t>(i)] || skip(i)) continue;
      if (bi < 0 || prio[static_cast<std::size_t>(i)] >
                        prio[static_cast<std::size_t>(bi)])
        bi = i;
    }
    return bi;
  }

  static long long eval_of(int i) { return 1000003LL * i + i * i; }

  void do_commit(int item, long long v) {
    committed[static_cast<std::size_t>(item)] = 1;
    seq.push_back(item);
    sum += v;
    marks.mark(item);
    marks.mark((item + 1) % n);
  }

  me::WorklistStats run(me::Pool* pool) {
    me::WorklistHooks h;
    h.begin_round = [&] {
      marks.next_epoch();
      predicted.next_epoch();
    };
    h.predict = [&]() -> int {
      const int i = best([&](int j) { return predicted.marked(j); });
      if (i >= 0) predicted.mark(i);
      return i;
    };
    h.evaluate = [&](int slot, int item) {
      slot_val[static_cast<std::size_t>(slot)] = eval_of(item);
    };
    h.select = [&] { return best([](int) { return false; }); };
    h.valid = [&](int, int item) {
      return !marks.marked(item) && !marks.marked((item + 1) % n);
    };
    h.commit = [&](int slot, int item) {
      do_commit(item, slot_val[static_cast<std::size_t>(slot)]);
    };
    h.commit_serial = [&](int item) { do_commit(item, eval_of(item)); };
    me::WorklistOptions o;
    o.pool = pool;
    return me::run_worklist(h, o);
  }
};

}  // namespace

using ExecWorklist = Quiet;

TEST_F(ExecWorklist, CommitSequenceByteIdenticalAcrossPoolSizes) {
  constexpr int kN = 600;
  ToyWorklist ref(kN, /*flat_priority=*/false);
  me::Pool p1(1);
  const auto ref_stats = ref.run(&p1);
  EXPECT_EQ(ref_stats.committed(), kN);

  for (int workers : {2, 4, 8}) {
    ToyWorklist t(kN, /*flat_priority=*/false);
    me::Pool p(workers);
    const auto st = t.run(&p);
    EXPECT_EQ(t.seq, ref.seq) << "pool " << workers;
    EXPECT_EQ(t.sum, ref.sum) << "pool " << workers;
    // Accounting identities: every item commits exactly once, and every
    // speculative evaluation is reused, invalidated, or discarded.
    EXPECT_EQ(st.spec_commits + st.serial_commits, kN);
    EXPECT_EQ(st.predicted, st.spec_commits + st.conflicts + st.discarded);
  }
}

TEST_F(ExecWorklist, ConflictStormStillCommitsInPriorityOrder) {
  // Flat priorities force ascending-id commits, and the {i, i+1}
  // neighborhood then invalidates almost every speculative slot — the
  // engine must degrade to serial commits without reordering anything.
  constexpr int kN = 300;
  ToyWorklist t(kN, /*flat_priority=*/true);
  me::Pool p(4);
  const auto st = t.run(&p);
  ASSERT_EQ(static_cast<int>(t.seq.size()), kN);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(t.seq[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(st.spec_commits + st.serial_commits, kN);
  EXPECT_GT(st.conflicts, 0);
}

TEST_F(ExecWorklist, EpochMarksInvalidateInBulk) {
  me::EpochMarks m;
  m.reset(16);
  m.next_epoch();
  m.mark(3);
  m.mark(15);
  EXPECT_TRUE(m.marked(3));
  EXPECT_TRUE(m.marked(15));
  EXPECT_FALSE(m.marked(4));
  m.next_epoch();
  EXPECT_FALSE(m.marked(3));
  EXPECT_FALSE(m.marked(15));
}

TEST_F(ExecWorklist, OrderedGatherMatchesSerialAppend) {
  auto fn = [](int i, std::vector<int>& out) {
    if (i % 3 != 1) out.push_back(i * 5);
  };
  std::vector<int> serial;
  for (int i = 0; i < 1000; ++i) fn(i, serial);
  for (int workers : {1, 4}) {
    me::Pool p(workers);
    const auto par = me::ordered_gather<int>(p, 1000, 7, fn);
    EXPECT_EQ(par, serial) << "pool " << workers;
  }
}

TEST_F(ExecPool, ContentionStatsAccountForEveryTask) {
  me::Pool p(3);
  std::atomic<int> ran{0};
  p.parallel_for(0, 500, [&](int) { ran.fetch_add(1); }, /*grain=*/1);
  EXPECT_EQ(ran.load(), 500);
  // parallel_for returns only after every chunk executed, and each
  // executed task was popped exactly once (locally or via a steal).
  const auto s = p.stats();
  EXPECT_EQ(s.posted, 500);
  EXPECT_EQ(s.posted, s.local_pops + s.steals);
}

TEST_F(ExecTrace, PoolTelemetryCountersAppearInTrace) {
  const std::string path = ::testing::TempDir() + "m3d_pool_trace.json";
  mu::trace_begin(path);
  {
    me::Pool p(2);
    p.parallel_for(0, 64, [](int) {}, /*grain=*/1);
  }
  mu::trace_end();
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("pool_pf_chunks"), std::string::npos);
  EXPECT_NE(json.find("pool_pf_caller_chunks"), std::string::npos);
  EXPECT_NE(json.find("pool_steals"), std::string::npos);
  std::remove(path.c_str());
}
