// Tests for the netlist generators: determinism, scaling, structural
// signatures (macros in CPU, blocks, symmetry of AES, global LDPC wiring),
// and validity of every generated netlist.

#include <gtest/gtest.h>

#include <set>

#include "gen/designs.hpp"
#include "gen/fabric.hpp"
#include "netlist/netlist.hpp"

namespace mg = m3d::gen;
namespace mn = m3d::netlist;
namespace mt = m3d::tech;

namespace {
mg::GenOptions tiny() {
  mg::GenOptions o;
  o.scale = 0.1;
  return o;
}
}  // namespace

TEST(Gen, AllDesignsValidate) {
  for (const char* name : {"aes", "ldpc", "netcard", "cpu"}) {
    const auto nl = mg::make_design(name, tiny());
    EXPECT_NO_THROW(nl.validate()) << name;
    EXPECT_GT(nl.stats().cells, 50) << name;
    EXPECT_GT(nl.stats().seq_cells, 0) << name;
  }
}

TEST(Gen, DeterministicForSameSeed) {
  const auto a = mg::make_cpu(tiny());
  const auto b = mg::make_cpu(tiny());
  ASSERT_EQ(a.cell_count(), b.cell_count());
  ASSERT_EQ(a.net_count(), b.net_count());
  for (mn::CellId c = 0; c < a.cell_count(); ++c) {
    EXPECT_EQ(a.cell(c).name, b.cell(c).name);
    EXPECT_EQ(a.cell(c).func, b.cell(c).func);
  }
}

TEST(Gen, DifferentSeedsDiffer) {
  auto o1 = tiny(), o2 = tiny();
  o2.seed = 99;
  const auto a = mg::make_netcard(o1);
  const auto b = mg::make_netcard(o2);
  // Same structure scale, different wiring: compare a few net topologies.
  bool differs = a.net_count() != b.net_count();
  for (mn::NetId n = 0; !differs && n < std::min(a.net_count(), b.net_count());
       ++n)
    differs = a.net(n).pins != b.net(n).pins;
  EXPECT_TRUE(differs);
}

TEST(Gen, ScaleGrowsCellCount) {
  mg::GenOptions small = tiny();
  mg::GenOptions big = tiny();
  big.scale = 0.4;
  const int s = mg::make_ldpc(small).stats().cells;
  const int b = mg::make_ldpc(big).stats().cells;
  EXPECT_GT(b, 2 * s);
}

TEST(Gen, CpuHasMacrosAndBlocks) {
  const auto nl = mg::make_cpu(tiny());
  EXPECT_EQ(nl.stats().macros, 4);
  std::set<std::string> blocks;
  for (int b = 0; b < nl.block_count(); ++b) blocks.insert(std::string(nl.block_name(b)));
  for (const char* want : {"ifu", "decode", "alu", "mul", "fpu", "lsu",
                           "regfile"})
    EXPECT_TRUE(blocks.count(want)) << want;
  // The multiplier block exists and is non-trivial.
  int mul_cells = 0;
  for (mn::CellId c = 0; c < nl.cell_count(); ++c)
    if (nl.block_name(nl.cell(c).block) == "mul") ++mul_cells;
  EXPECT_GT(mul_cells, 100);
}

TEST(Gen, OthersHaveNoMacros) {
  EXPECT_EQ(mg::make_aes(tiny()).stats().macros, 0);
  EXPECT_EQ(mg::make_ldpc(tiny()).stats().macros, 0);
  EXPECT_EQ(mg::make_netcard(tiny()).stats().macros, 0);
}

TEST(Gen, AesHas128BitInterface) {
  const auto nl = mg::make_aes(tiny());
  int pt = 0, ct = 0;
  for (mn::CellId c = 0; c < nl.cell_count(); ++c) {
    const auto& cc = nl.cell(c);
    if (cc.kind == mn::CellKind::PrimaryIn &&
        cc.name.rfind("pt_", 0) == 0)
      ++pt;
    if (cc.kind == mn::CellKind::PrimaryOut &&
        cc.name.rfind("ct_", 0) == 0)
      ++ct;
  }
  EXPECT_EQ(pt, 128);
  EXPECT_EQ(ct, 128);
}

TEST(Gen, EveryFlopIsClocked) {
  const auto nl = mg::make_cpu(tiny());
  for (mn::CellId c = 0; c < nl.cell_count(); ++c) {
    const auto& cc = nl.cell(c);
    if (!cc.is_sequential() && !cc.is_macro()) continue;
    const auto ck = nl.clock_pin(c);
    ASSERT_NE(ck, mn::kInvalidId);
    ASSERT_NE(nl.pin(ck).net, mn::kInvalidId);
    EXPECT_TRUE(nl.net(nl.pin(ck).net).is_clock);
  }
}

TEST(Gen, NoDanglingDrivenNets) {
  const auto nl = mg::make_netcard(tiny());
  for (mn::NetId n = 0; n < nl.net_count(); ++n) {
    const auto& net = nl.net(n);
    if (net.driver == mn::kInvalidId) continue;
    EXPECT_GT(nl.fanout(n), 0) << net.name;
  }
}

TEST(Gen, ActivitiesAreRandomizedWithinRange) {
  const auto nl = mg::make_aes(tiny());
  int distinct = 0;
  double prev = -1.0;
  for (mn::NetId n = 0; n < nl.net_count(); ++n) {
    const auto& net = nl.net(n);
    if (net.is_clock) {
      EXPECT_DOUBLE_EQ(net.activity, 2.0);
      continue;
    }
    EXPECT_GE(net.activity, 0.05);
    EXPECT_LE(net.activity, 0.40);
    if (net.activity != prev) ++distinct;
    prev = net.activity;
  }
  EXPECT_GT(distinct, 10);
}

TEST(Gen, LdpcWiringIsGlobalNetcardLocal) {
  // Proxy for wire-dominance at realistic scale: the fraction of nets whose
  // endpoints are created far apart. LDPC's parity permutations connect
  // distant cells; netcard's datapath is overwhelmingly stage-local.
  auto global_fraction = [](const mn::Netlist& nl) {
    int global = 0, count = 0;
    for (mn::NetId n = 0; n < nl.net_count(); ++n) {
      const auto& net = nl.net(n);
      if (net.is_clock || net.pins.size() < 2) continue;
      int lo = nl.cell_count(), hi = 0;
      for (auto p : net.pins) {
        lo = std::min(lo, nl.pin(p).cell);
        hi = std::max(hi, nl.pin(p).cell);
      }
      if (hi - lo > nl.cell_count() / 4) ++global;
      ++count;
    }
    return static_cast<double>(global) / count;
  };
  mg::GenOptions g;
  g.scale = 0.3;
  const double ldpc = global_fraction(mg::make_ldpc(g));
  const double netcard = global_fraction(mg::make_netcard(g));
  EXPECT_GT(ldpc, 2.0 * netcard);
}

TEST(Gen, UnknownDesignThrows) {
  EXPECT_THROW(mg::make_design("bogus", tiny()), m3d::util::Error);
}

TEST(Fabric, XorTreeReducesToOne) {
  mg::LogicFabric f("t", 1);
  std::vector<mn::NetId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(f.input("i" + std::to_string(i)));
  const auto out = f.xor_tree(ins);
  f.output("o", out);
  auto nl = std::move(f).take();
  EXPECT_EQ(nl.stats().comb_cells, 5);  // n-1 XOR2 gates
  nl.validate();
}

TEST(Fabric, TerminateDanglingAddsPorts) {
  mg::LogicFabric f("t", 1);
  const auto in = f.input("a");
  f.gate(mt::CellFunc::Inv, {in});  // output left dangling
  auto nl = std::move(f).take();
  const int added = mg::terminate_dangling(nl);
  EXPECT_EQ(added, 1);
  nl.validate();
}
