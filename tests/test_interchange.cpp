// Round-trip tests for the interchange formats: Liberty (.lib) library
// serialization and structural Verilog netlists.

#include <gtest/gtest.h>

#include "gen/designs.hpp"
#include "netlist/design.hpp"
#include "netlist/verilog_reader.hpp"
#include "netlist/writer.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "tech/liberty.hpp"
#include "tech/library_factory.hpp"

namespace mg = m3d::gen;
namespace mn = m3d::netlist;
namespace mt = m3d::tech;

// ----------------------------------------------------------------- liberty

TEST(Liberty, WriteProducesWellFormedText) {
  const auto lib = mt::make_12track();
  const auto s = mt::liberty_string(*lib);
  EXPECT_NE(s.find("library (lib12t)"), std::string::npos);
  EXPECT_NE(s.find("cell (INV_X1_12T)"), std::string::npos);
  EXPECT_NE(s.find("cell_rise"), std::string::npos);
  EXPECT_NE(s.find("SRAM_1KX32"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
}

TEST(Liberty, RoundTripPreservesLibraryAttributes) {
  const auto orig = mt::make_9track();
  const auto lib = mt::parse_liberty(mt::liberty_string(*orig));
  EXPECT_EQ(lib.name(), orig->name());
  EXPECT_EQ(lib.tracks(), orig->tracks());
  EXPECT_DOUBLE_EQ(lib.vdd(), orig->vdd());
  EXPECT_DOUBLE_EQ(lib.vthp(), orig->vthp());
  EXPECT_DOUBLE_EQ(lib.row_height_um(), orig->row_height_um());
  EXPECT_DOUBLE_EQ(lib.wire().res_kohm_per_um,
                   orig->wire().res_kohm_per_um);
  EXPECT_DOUBLE_EQ(lib.miv().cap_ff, orig->miv().cap_ff);
  EXPECT_EQ(lib.cell_count(), orig->cell_count());
  EXPECT_EQ(lib.macro_count(), orig->macro_count());
}

TEST(Liberty, RoundTripPreservesCellElectricals) {
  const auto orig = mt::make_12track();
  const auto lib = mt::parse_liberty(mt::liberty_string(*orig));
  for (auto f : {mt::CellFunc::Inv, mt::CellFunc::Nand2, mt::CellFunc::Dff,
                 mt::CellFunc::Mux2}) {
    for (int d : {1, 4}) {
      const auto* a = orig->find(f, d);
      const auto* b = lib.find(f, d);
      ASSERT_NE(b, nullptr) << mt::func_name(f) << d;
      EXPECT_NEAR(b->width_um, a->width_um, 1e-9);
      EXPECT_NEAR(b->input_cap_ff, a->input_cap_ff, 1e-9);
      EXPECT_NEAR(b->leakage_uw, a->leakage_uw, 1e-9);
      EXPECT_NEAR(b->internal_energy_fj, a->internal_energy_fj, 1e-9);
      EXPECT_EQ(b->arcs.size(), a->arcs.size());
    }
  }
  const auto* dff_a = orig->find(mt::CellFunc::Dff, 2);
  const auto* dff_b = lib.find(mt::CellFunc::Dff, 2);
  EXPECT_NEAR(dff_b->setup_ns, dff_a->setup_ns, 1e-12);
  EXPECT_NEAR(dff_b->hold_ns, dff_a->hold_ns, 1e-12);
  EXPECT_NEAR(dff_b->clock_cap_ff, dff_a->clock_cap_ff, 1e-12);
}

TEST(Liberty, RoundTripPreservesNldmLookups) {
  const auto orig = mt::make_12track();
  const auto lib = mt::parse_liberty(mt::liberty_string(*orig));
  const auto* a = orig->find(mt::CellFunc::Xor2, 2);
  const auto* b = lib.find(mt::CellFunc::Xor2, 2);
  for (double slew : {0.004, 0.02, 0.11}) {
    for (double load : {0.8, 5.0, 60.0}) {
      for (int t : {0, 1}) {
        EXPECT_NEAR(b->arc(1).delay[t].lookup(slew, load),
                    a->arc(1).delay[t].lookup(slew, load), 1e-9);
        EXPECT_NEAR(b->arc(1).out_slew[t].lookup(slew, load),
                    a->arc(1).out_slew[t].lookup(slew, load), 1e-9);
      }
    }
  }
  EXPECT_EQ(b->arc(0).inverting, a->arc(0).inverting);
}

TEST(Liberty, RoundTripPreservesMacros) {
  const auto orig = mt::make_12track();
  const auto lib = mt::parse_liberty(mt::liberty_string(*orig));
  const int mi = lib.find_macro("SRAM_4KX32");
  ASSERT_GE(mi, 0);
  const auto& a = orig->macro(orig->find_macro("SRAM_4KX32"));
  const auto& b = lib.macro(mi);
  EXPECT_NEAR(b.width_um, a.width_um, 1e-9);
  EXPECT_NEAR(b.height_um, a.height_um, 1e-9);
  EXPECT_NEAR(b.access_ns, a.access_ns, 1e-12);
  EXPECT_NEAR(b.leakage_uw, a.leakage_uw, 1e-9);
}

TEST(Liberty, ParserRejectsGarbage) {
  EXPECT_THROW(mt::parse_liberty("not a liberty file"), m3d::util::Error);
  EXPECT_THROW(mt::parse_liberty("library (x) { cell (y) { "),
               m3d::util::Error);
}

TEST(Liberty, ParserIgnoresUnknownAttributes) {
  const std::string text =
      "library (mini) {\n"
      "  nom_voltage : 0.8;\n"
      "  some_vendor_thing : 42;\n"
      "  operating_conditions (fast) { process : 1; }\n"
      "}\n";
  const auto lib = mt::parse_liberty(text);
  EXPECT_EQ(lib.name(), "mini");
  EXPECT_DOUBLE_EQ(lib.vdd(), 0.8);
  EXPECT_EQ(lib.cell_count(), 0);
}

// ----------------------------------------------------------------- verilog

namespace {
mn::Netlist sample() {
  mg::GenOptions g;
  g.scale = 0.06;
  return mg::make_cpu(g);  // has macros, flops, clock net, ports
}
}  // namespace

TEST(Verilog, RoundTripPreservesStats) {
  const auto orig = sample();
  const auto back = mn::parse_verilog(mn::verilog_string(orig));
  const auto a = orig.stats();
  const auto b = back.stats();
  EXPECT_EQ(b.cells, a.cells);
  EXPECT_EQ(b.comb_cells, a.comb_cells);
  EXPECT_EQ(b.seq_cells, a.seq_cells);
  EXPECT_EQ(b.macros, a.macros);
  EXPECT_EQ(b.ports, a.ports);
  EXPECT_EQ(b.nets, a.nets);
  EXPECT_EQ(b.pins, a.pins);
  EXPECT_NEAR(b.avg_fanout, a.avg_fanout, 1e-12);
}

TEST(Verilog, RoundTripPreservesConnectivity) {
  const auto orig = sample();
  const auto back = mn::parse_verilog(mn::verilog_string(orig));
  ASSERT_EQ(back.net_count(), orig.net_count());
  // Nets are recreated in declaration order; compare fanouts and driver
  // cell functions by name.
  std::map<std::string, int> orig_fanout, back_fanout;
  for (mn::NetId n = 0; n < orig.net_count(); ++n)
    orig_fanout[std::string(orig.net(n).name)] = orig.fanout(n);
  for (mn::NetId n = 0; n < back.net_count(); ++n)
    back_fanout[std::string(back.net(n).name)] = back.fanout(n);
  EXPECT_EQ(back_fanout, orig_fanout);
}

TEST(Verilog, RoundTripPreservesClockMarking) {
  const auto orig = sample();
  const auto back = mn::parse_verilog(mn::verilog_string(orig));
  int orig_clocks = 0, back_clocks = 0;
  for (mn::NetId n = 0; n < orig.net_count(); ++n)
    orig_clocks += orig.net(n).is_clock;
  for (mn::NetId n = 0; n < back.net_count(); ++n)
    back_clocks += back.net(n).is_clock;
  EXPECT_EQ(back_clocks, orig_clocks);
  EXPECT_GT(back_clocks, 0);
}

TEST(Verilog, RoundTripPreservesDrivesAndFunctions) {
  const auto orig = sample();
  const auto back = mn::parse_verilog(mn::verilog_string(orig));
  std::map<std::string, std::pair<int, int>> orig_cells;  // func, drive
  for (mn::CellId c = 0; c < orig.cell_count(); ++c) {
    const auto& cc = orig.cell(c);
    if (cc.is_comb() || cc.is_sequential())
      orig_cells[std::string(cc.name)] = {static_cast<int>(cc.func), cc.drive};
  }
  int matched = 0;
  for (mn::CellId c = 0; c < back.cell_count(); ++c) {
    const auto& cc = back.cell(c);
    if (!cc.is_comb() && !cc.is_sequential()) continue;
    auto it = orig_cells.find(std::string(cc.name));
    ASSERT_NE(it, orig_cells.end()) << cc.name;
    EXPECT_EQ(static_cast<int>(cc.func), it->second.first);
    EXPECT_EQ(cc.drive, it->second.second);
    ++matched;
  }
  EXPECT_EQ(matched, static_cast<int>(orig_cells.size()));
}

// The generated mesh/NoC fabric must survive writer → reader unchanged:
// same structure by name, and — because the writer emits cells and nets
// in id order and the reader rebuilds in file order — the same ids, so a
// placement + routing pass over the reparsed netlist reproduces the
// original flow metrics bit for bit (the "flow digest").
TEST(Verilog, MeshRoundTripPreservesStructureAndFlowDigest) {
  mg::GenOptions g;
  g.scale = 0.05;
  const auto orig = mg::make_mesh(g);
  const auto back = mn::parse_verilog(mn::verilog_string(orig));

  const auto a = orig.stats();
  const auto b = back.stats();
  EXPECT_EQ(b.cells, a.cells);
  EXPECT_EQ(b.seq_cells, a.seq_cells);
  EXPECT_EQ(b.ports, a.ports);
  EXPECT_EQ(b.nets, a.nets);
  EXPECT_EQ(b.pins, a.pins);

  // Structural isomorphism by name: identical fanout per net.
  std::map<std::string, int> orig_fanout, back_fanout;
  for (mn::NetId n = 0; n < orig.net_count(); ++n)
    orig_fanout[std::string(orig.net(n).name)] = orig.fanout(n);
  for (mn::NetId n = 0; n < back.net_count(); ++n)
    back_fanout[std::string(back.net(n).name)] = back.fanout(n);
  EXPECT_EQ(back_fanout, orig_fanout);

  // Flow digest: identical placement and routed wirelength.
  auto flow_wl = [](const mn::Netlist& nl) {
    mn::Design d(nl, mt::make_12track(), mt::make_9track());
    m3d::place::place_design(d);
    return m3d::route::route_design(d).total_wirelength_um;
  };
  EXPECT_EQ(flow_wl(orig), flow_wl(back));
}

TEST(Verilog, ReaderRejectsMalformedInput) {
  EXPECT_THROW(mn::parse_verilog("nonsense"), m3d::util::Error);
  EXPECT_THROW(mn::parse_verilog("module m (input a);\n wire w;\n"),
               m3d::util::Error);  // missing endmodule
  EXPECT_THROW(
      mn::parse_verilog("module m ();\n INV_X1 u (.A0(nope));\nendmodule"),
      m3d::util::Error);  // undeclared net
}

TEST(Verilog, HandwrittenModuleParses) {
  const std::string text = R"(
    module adder (
      input a,
      input b,
      output s
    );
      wire na;  // plain
      wire nb;
      wire ns;
      assign na = a;
      assign nb = b;
      XOR2_X2 u0 (.A0(na), .A1(nb), .Z(ns));
      assign s = ns;
    endmodule
  )";
  const auto nl = mn::parse_verilog(text);
  EXPECT_EQ(nl.name(), "adder");
  EXPECT_EQ(nl.stats().cells, 1);
  EXPECT_EQ(nl.stats().ports, 3);
  const auto& gate = nl.cell(3);
  EXPECT_EQ(gate.func, m3d::tech::CellFunc::Xor2);
  EXPECT_EQ(gate.drive, 2);
}
