// Tests for the placer: floorplan sizing, port/macro pinning, global
// placement quality, legality after legalization, 3-D two-tier placement.

#include <gtest/gtest.h>

#include "gen/designs.hpp"
#include "netlist/design.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "tech/library_factory.hpp"
#include "util/rng.hpp"

namespace mg = m3d::gen;
namespace mn = m3d::netlist;
namespace mp = m3d::place;
namespace mr = m3d::route;
namespace mt = m3d::tech;

namespace {

mn::Design small_design(bool three_d = false, const char* which = "netcard") {
  mg::GenOptions g;
  g.scale = 0.06;
  return mn::Design(mg::make_design(which, g), mt::make_12track(),
                    three_d ? mt::make_9track() : nullptr);
}

bool inside(const m3d::util::Rect& fp, m3d::util::Point p, double slack) {
  return p.x >= fp.xlo - slack && p.x <= fp.xhi + slack &&
         p.y >= fp.ylo - slack && p.y <= fp.yhi + slack;
}

}  // namespace

TEST(Place, FloorplanMatchesUtilization) {
  auto d = small_design();
  mp::PlaceOptions opt;
  opt.utilization = 0.6;
  mp::init_floorplan(d, opt);
  const double core = d.floorplan().area();
  EXPECT_NEAR(d.total_std_cell_area() / core, 0.6, 0.02);
}

TEST(Place, ThreeDFloorplanIsHalved) {
  auto d2 = small_design(false);
  auto d3 = small_design(true);
  mp::PlaceOptions opt;
  mp::init_floorplan(d2, opt);
  mp::init_floorplan(d3, opt);
  EXPECT_NEAR(d3.floorplan().area() / d2.floorplan().area(), 0.5, 0.03);
}

TEST(Place, PortsOnBoundary) {
  auto d = small_design();
  mp::init_floorplan(d, {});
  const auto& fp = d.floorplan();
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c) {
    if (!d.nl().cell(c).is_port()) continue;
    const auto p = d.pos(c);
    const bool on_edge = std::abs(p.x - fp.xlo) < 1e-6 ||
                         std::abs(p.x - fp.xhi) < 1e-6 ||
                         std::abs(p.y - fp.ylo) < 1e-6 ||
                         std::abs(p.y - fp.yhi) < 1e-6;
    EXPECT_TRUE(on_edge) << d.nl().cell(c).name;
  }
}

TEST(Place, MacrosInsideAndSplitAcrossTiers) {
  auto d = mn::Design(mg::make_cpu({0.06, 7}), mt::make_12track(),
                      mt::make_9track());
  mp::init_floorplan(d, {});
  int on_tier[2] = {0, 0};
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c) {
    if (!d.nl().cell(c).is_macro()) continue;
    ++on_tier[d.tier(c)];
    EXPECT_TRUE(inside(d.floorplan(), d.pos(c), 1.0));
  }
  // Memories exist in both technology variants (paper), so the macros are
  // area-balanced across the two tiers.
  EXPECT_GT(on_tier[0], 0);
  EXPECT_GT(on_tier[1], 0);
  EXPECT_NEAR(mp::tier_macro_area(d, 0), mp::tier_macro_area(d, 1),
              0.6 * std::max(mp::tier_macro_area(d, 0),
                             mp::tier_macro_area(d, 1)));
}

TEST(Place, GlobalPlaceBeatsRandomScatter) {
  auto d = small_design();
  mp::PlaceOptions opt;
  mp::init_floorplan(d, opt);
  // Random scatter baseline.
  m3d::util::Rng rng(3);
  const auto fp = d.floorplan();
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c) {
    if (d.nl().cell(c).fixed || d.nl().cell(c).is_port()) continue;
    d.set_pos(c, {rng.uniform(fp.xlo, fp.xhi), rng.uniform(fp.ylo, fp.yhi)});
  }
  const double random_hpwl = mr::total_hpwl(d);
  mp::global_place(d, opt);
  const double placed_hpwl = mr::total_hpwl(d);
  EXPECT_LT(placed_hpwl, 0.6 * random_hpwl);
}

TEST(Place, AllCellsInsideAfterPlacement) {
  auto d = small_design();
  mp::place_design(d, {});
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c)
    EXPECT_TRUE(inside(d.floorplan(), d.pos(c), 1.0))
        << d.nl().cell(c).name;
}

TEST(Place, LegalizationRemovesOverlap) {
  auto d = small_design();
  mp::PlaceOptions opt;
  opt.utilization = 0.55;
  mp::place_design(d, opt);
  EXPECT_LT(mp::max_overlap_um2(d), 1e-6);
}

TEST(Place, LegalizationSnapsToRows) {
  auto d = small_design();
  mp::place_design(d, {});
  const double row_h = d.lib(mn::kBottomTier).row_height_um();
  const double ylo = d.floorplan().ylo;
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c) {
    const auto& cc = d.nl().cell(c);
    if (cc.is_port() || cc.is_macro()) continue;
    const double rel = (d.pos(c).y - ylo) / row_h - 0.5;
    EXPECT_NEAR(rel, std::round(rel), 1e-6) << cc.name;
  }
}

TEST(Place, ThreeDTiersEachLegal) {
  auto d = small_design(true);
  mp::PlaceOptions opt;
  opt.utilization = 0.5;
  mp::init_floorplan(d, opt);
  mp::global_place(d, opt);
  // Split cells across tiers arbitrarily, then legalize.
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c) {
    const auto& cc = d.nl().cell(c);
    if (cc.fixed || cc.is_port()) continue;
    if (c % 2 == 0) d.set_tier(c, mn::kTopTier);
  }
  mp::legalize(d);
  EXPECT_LT(mp::max_overlap_um2(d), 1e-6);
  // Top-tier rows use the 9-track pitch.
  const double row9 = d.lib(mn::kTopTier).row_height_um();
  const double ylo = d.floorplan().ylo;
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c) {
    const auto& cc = d.nl().cell(c);
    if (cc.is_port() || cc.is_macro() || d.tier(c) != mn::kTopTier) continue;
    const double rel = (d.pos(c).y - ylo) / row9 - 0.5;
    EXPECT_NEAR(rel, std::round(rel), 1e-6);
  }
}

TEST(Place, CellsAvoidMacroRegions) {
  auto d = mn::Design(mg::make_cpu({0.06, 7}), mt::make_12track());
  mp::PlaceOptions opt;
  opt.utilization = 0.5;
  mp::place_design(d, opt);
  // No std cell center may fall inside a macro's rectangle on tier 0.
  for (mn::CellId m = 0; m < d.nl().cell_count(); ++m) {
    if (!d.nl().cell(m).is_macro()) continue;
    const auto mp_ = d.pos(m);
    const double w = d.cell_width(m), h = d.cell_height(m);
    const m3d::util::Rect r{mp_.x - w / 2, mp_.y - h / 2, mp_.x + w / 2,
                            mp_.y + h / 2};
    for (mn::CellId c = 0; c < d.nl().cell_count(); ++c) {
      const auto& cc = d.nl().cell(c);
      if (cc.is_port() || cc.is_macro()) continue;
      EXPECT_FALSE(r.contains(d.pos(c))) << cc.name;
    }
  }
}

TEST(Place, DeterministicForSameSeed) {
  auto d1 = small_design();
  auto d2 = small_design();
  mp::place_design(d1, {});
  mp::place_design(d2, {});
  for (mn::CellId c = 0; c < d1.nl().cell_count(); ++c)
    EXPECT_EQ(d1.pos(c), d2.pos(c));
}

// Brute-force reference for max_overlap_um2: examine every same-tier pair.
// The grid-bucket sweep must agree bit for bit — it compares a superset
// of pairs through an order-independent max over the same pair overlaps.
static double brute_force_max_overlap(const mn::Design& d) {
  const auto& nl = d.nl();
  double worst = 0.0;
  for (int tier = 0; tier < d.num_tiers(); ++tier) {
    std::vector<mn::CellId> cells;
    for (mn::CellId c = 0; c < nl.cell_count(); ++c)
      if (!nl.cell(c).is_port() && d.tier(c) == tier) cells.push_back(c);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto pi = d.pos(cells[i]);
      const double wi = d.cell_width(cells[i]) / 2.0;
      const double hi = d.cell_height(cells[i]) / 2.0;
      for (std::size_t j = i + 1; j < cells.size(); ++j) {
        const auto pj = d.pos(cells[j]);
        const double wj = d.cell_width(cells[j]) / 2.0;
        const double hj = d.cell_height(cells[j]) / 2.0;
        const double ox =
            std::min(pi.x + wi, pj.x + wj) - std::max(pi.x - wi, pj.x - wj);
        const double oy =
            std::min(pi.y + hi, pj.y + hj) - std::max(pi.y - hi, pj.y - hj);
        if (ox > 1e-9 && oy > 1e-9) worst = std::max(worst, ox * oy);
      }
    }
  }
  return worst;
}

TEST(PlaceScale, GridOverlapMatchesBruteForce) {
  // Overlapping snapshot: global placement before legalization piles
  // cells up, exercising the multi-bucket and cross-bucket pair paths.
  auto d = small_design(true);
  mp::PlaceOptions opt;
  mp::init_floorplan(d, opt);
  mp::global_place(d, opt);
  EXPECT_GT(mp::max_overlap_um2(d), 0.0);
  EXPECT_EQ(mp::max_overlap_um2(d), brute_force_max_overlap(d));

  // Legal snapshot: both sides must agree the placement is clean.
  mp::legalize(d);
  EXPECT_EQ(mp::max_overlap_um2(d), brute_force_max_overlap(d));
}

TEST(PlaceScale, GridOverlapMatchesBruteForceOnMesh) {
  mg::GenOptions g;
  g.scale = 0.05;  // a few hundred cells: brute force stays cheap
  mn::Design d(mg::make_mesh(g), mt::make_12track(), mt::make_9track());
  mp::PlaceOptions opt;
  mp::init_floorplan(d, opt);
  mp::global_place(d, opt);
  EXPECT_EQ(mp::max_overlap_um2(d), brute_force_max_overlap(d));
}

TEST(Place, MeanDisplacementMeasuresChange) {
  auto d = small_design();
  mp::place_design(d, {});
  std::vector<m3d::util::Point> snap;
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c)
    snap.push_back(d.pos(c));
  EXPECT_DOUBLE_EQ(mp::mean_displacement_um(d, snap), 0.0);
  mn::CellId movable = mn::kInvalidId;
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c)
    if (d.nl().cell(c).is_comb()) movable = c;
  ASSERT_NE(movable, mn::kInvalidId);
  d.set_pos(movable, d.pos(movable) + m3d::util::Point{10.0, 0.0});
  EXPECT_GT(mp::mean_displacement_um(d, snap), 0.0);
}
