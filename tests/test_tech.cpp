// Unit tests for the tech module: NLDM interpolation, library factory
// calibration (9T vs 12T relations from the paper), boundary derates, wire
// and cost-relevant electrical models.

#include <gtest/gtest.h>

#include "tech/library_factory.hpp"
#include "tech/nldm.hpp"
#include "tech/tech_lib.hpp"
#include "tech/wire_model.hpp"

namespace mt = m3d::tech;

namespace {
mt::NldmTable simple_table() {
  // 2x2: value = slew*10 + load
  return mt::NldmTable({0.0, 1.0}, {0.0, 2.0}, {0.0, 2.0, 10.0, 12.0});
}
}  // namespace

TEST(Nldm, ExactCornerLookup) {
  const auto t = simple_table();
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 2.0), 12.0);
}

TEST(Nldm, BilinearInterior) {
  const auto t = simple_table();
  EXPECT_DOUBLE_EQ(t.lookup(0.5, 1.0), 6.0);
}

TEST(Nldm, LinearExtrapolationBeyondAxes) {
  const auto t = simple_table();
  // Beyond the load axis: slope continues.
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 4.0), 4.0);
  // Beyond the slew axis.
  EXPECT_DOUBLE_EQ(t.lookup(2.0, 0.0), 20.0);
}

TEST(Nldm, InRangeQuery) {
  const auto t = simple_table();
  EXPECT_TRUE(t.in_range(0.5, 1.0));
  EXPECT_FALSE(t.in_range(1.5, 1.0));
  EXPECT_FALSE(t.in_range(0.5, 3.0));
}

TEST(Nldm, ScaleMultipliesValues) {
  auto t = simple_table();
  t.scale(2.0);
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 2.0), 24.0);
}

TEST(Nldm, RejectsMalformedAxes) {
  EXPECT_THROW(mt::NldmTable({1.0, 0.5}, {0.0}, {1.0, 2.0}),
               m3d::util::Error);
  EXPECT_THROW(mt::NldmTable({0.0, 1.0}, {0.0}, {1.0}), m3d::util::Error);
}

TEST(LibraryFactory, BuildsAllFunctionsAndDrives) {
  const auto lib = mt::make_12track();
  for (auto f : {mt::CellFunc::Inv, mt::CellFunc::Buf, mt::CellFunc::Nand2,
                 mt::CellFunc::Nor2, mt::CellFunc::Xor2, mt::CellFunc::Mux2,
                 mt::CellFunc::Dff, mt::CellFunc::ClkBuf, mt::CellFunc::Aoi21,
                 mt::CellFunc::Oai21, mt::CellFunc::Nand3, mt::CellFunc::Nor3,
                 mt::CellFunc::And2, mt::CellFunc::Or2, mt::CellFunc::Xnor2}) {
    for (int d : {1, 2, 4, 8}) {
      EXPECT_NE(lib->find(f, d), nullptr)
          << mt::func_name(f) << "_X" << d;
    }
  }
}

TEST(LibraryFactory, RowHeightsFollowTrackCounts) {
  const auto l9 = mt::make_9track();
  const auto l12 = mt::make_12track();
  EXPECT_DOUBLE_EQ(l9->row_height_um(), 0.9);
  EXPECT_DOUBLE_EQ(l12->row_height_um(), 1.2);
  // The paper: 9-track cells are 25 % smaller in area (same width).
  const auto* i9 = l9->find(mt::CellFunc::Inv, 1);
  const auto* i12 = l12->find(mt::CellFunc::Inv, 1);
  const double a9 = i9->area_um2(l9->row_height_um());
  const double a12 = i12->area_um2(l12->row_height_um());
  EXPECT_NEAR(a9 / a12, 0.75, 1e-9);
}

TEST(LibraryFactory, NineTrackIsSlower) {
  const auto l9 = mt::make_9track();
  const auto l12 = mt::make_12track();
  const double f9 = mt::fo4_delay_ns(*l9);
  const double f12 = mt::fo4_delay_ns(*l12);
  // Calibration: the slow library is ~1.4–2.2× slower at FO4 (Table II
  // shows ~1.8× between the fast and slow FO4 delays).
  EXPECT_GT(f9 / f12, 1.4);
  EXPECT_LT(f9 / f12, 2.4);
}

TEST(LibraryFactory, NineTrackLeaksFarLess) {
  const auto l9 = mt::make_9track();
  const auto l12 = mt::make_12track();
  const auto* i9 = l9->find(mt::CellFunc::Inv, 1);
  const auto* i12 = l12->find(mt::CellFunc::Inv, 1);
  // Table II: slow-tier FO4 leakage ~30× lower (0.093 µW vs 0.003 µW).
  EXPECT_GT(i12->leakage_uw / i9->leakage_uw, 15.0);
}

TEST(LibraryFactory, NineTrackUsesLessEnergy) {
  const auto l9 = mt::make_9track();
  const auto l12 = mt::make_12track();
  const auto* i9 = l9->find(mt::CellFunc::Inv, 1);
  const auto* i12 = l12->find(mt::CellFunc::Inv, 1);
  EXPECT_LT(i9->internal_energy_fj, i12->internal_energy_fj);
  EXPECT_LT(i9->input_cap_ff, i12->input_cap_ff);
}

TEST(LibraryFactory, VoltagesMatchPaperSetup) {
  const auto l9 = mt::make_9track();
  const auto l12 = mt::make_12track();
  EXPECT_DOUBLE_EQ(l9->vdd(), 0.81);
  EXPECT_DOUBLE_EQ(l12->vdd(), 0.90);
}

TEST(LibraryFactory, FallSlowerThanRise) {
  const auto lib = mt::make_12track();
  const auto* inv = lib->find(mt::CellFunc::Inv, 1);
  const auto& arc = inv->arc(0);
  const double rise =
      arc.delay[int(mt::Transition::Rise)].lookup(0.02, 4.0);
  const double fall =
      arc.delay[int(mt::Transition::Fall)].lookup(0.02, 4.0);
  EXPECT_GT(fall, rise);  // matches Table II's fall > rise delays
}

TEST(LibraryFactory, DelayMonotoneInLoadAndSlew) {
  const auto lib = mt::make_12track();
  const auto* nand = lib->find(mt::CellFunc::Nand2, 2);
  const auto& d = nand->arc(0).delay[int(mt::Transition::Rise)];
  double prev = 0.0;
  for (double load : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    const double v = d.lookup(0.02, load);
    EXPECT_GT(v, prev);
    prev = v;
  }
  EXPECT_GT(d.lookup(0.1, 4.0), d.lookup(0.01, 4.0));
}

TEST(LibraryFactory, UpsizingReducesDelayIncreasesArea) {
  const auto lib = mt::make_12track();
  const auto* x1 = lib->find(mt::CellFunc::Inv, 1);
  const auto* x4 = lib->find(mt::CellFunc::Inv, 4);
  const double d1 =
      x1->arc(0).delay[int(mt::Transition::Rise)].lookup(0.02, 16.0);
  const double d4 =
      x4->arc(0).delay[int(mt::Transition::Rise)].lookup(0.02, 16.0);
  EXPECT_LT(d4, d1);
  EXPECT_GT(x4->width_um, x1->width_um);
  EXPECT_GT(x4->input_cap_ff, x1->input_cap_ff);
}

TEST(TechLib, FindAndDriveLadder) {
  const auto lib = mt::make_12track();
  EXPECT_EQ(lib->find(mt::CellFunc::Inv, 3), nullptr);
  EXPECT_EQ(lib->upsize(mt::CellFunc::Inv, 1), 2);
  EXPECT_EQ(lib->upsize(mt::CellFunc::Inv, 8), -1);
  EXPECT_EQ(lib->downsize(mt::CellFunc::Inv, 2), 1);
  EXPECT_EQ(lib->downsize(mt::CellFunc::Inv, 1), -1);
  const auto drives = lib->drives_for(mt::CellFunc::Nand2);
  EXPECT_EQ(drives, (std::vector<int>{1, 2, 4, 8}));
}

TEST(TechLib, MacrosPresentAndIdenticalAcrossLibraries) {
  const auto l9 = mt::make_9track();
  const auto l12 = mt::make_12track();
  const int m9 = l9->find_macro("SRAM_1KX32");
  const int m12 = l12->find_macro("SRAM_1KX32");
  ASSERT_GE(m9, 0);
  ASSERT_GE(m12, 0);
  // Paper: "memories in the CPU design are of the same size in both
  // technology variants".
  EXPECT_DOUBLE_EQ(l9->macro(m9).area_um2(), l12->macro(m12).area_um2());
  EXPECT_DOUBLE_EQ(l9->macro(m9).access_ns, l12->macro(m12).access_ns);
}

TEST(Boundary, OverdriveSpeedsUpUnderdriveSlowsDown) {
  // Input driven from 0.90 V rail into a 0.81 V cell: overdrive → faster.
  const double fast_in = mt::boundary_delay_derate(0.90, 0.81, 0.30);
  EXPECT_LT(fast_in, 1.0);
  // Input from 0.81 V into a 0.90 V cell: underdrive → slower.
  const double slow_in = mt::boundary_delay_derate(0.81, 0.90, 0.32);
  EXPECT_GT(slow_in, 1.0);
  // Homogeneous: exactly 1.
  EXPECT_DOUBLE_EQ(mt::boundary_delay_derate(0.9, 0.9, 0.32), 1.0);
  // Magnitudes stay modest (paper: stage-delay shifts of a few percent
  // with opposite signs).
  EXPECT_GT(fast_in, 0.75);
  EXPECT_LT(slow_in, 1.35);
}

TEST(Boundary, LeakageDerateIsExponentialAndAsymmetric) {
  const double up = mt::boundary_leakage_derate(0.90, 0.81);
  const double down = mt::boundary_leakage_derate(0.81, 0.90);
  EXPECT_GT(up, 2.0);    // Table III: +250 % leakage with overdriven input
  EXPECT_LT(down, 0.6);  // Table III: −45 % with underdriven input
  EXPECT_DOUBLE_EQ(mt::boundary_leakage_derate(0.9, 0.9), 1.0);
  // Asymmetry: up-shift is much larger than the down-shift is small.
  EXPECT_GT(up * down, 0.9);  // exp(x)*exp(-x) == 1
}

TEST(Boundary, LevelShifterFreeRule) {
  // Paper setup: 0.90 / 0.81 with Vthp ≥ 0.30 → no level shifters needed.
  EXPECT_TRUE(mt::level_shifter_free(0.90, 0.81, 0.30));
  // A 0.9 vs 0.55 gap breaks the 0.3·VDDH rule.
  EXPECT_FALSE(mt::level_shifter_free(0.90, 0.55, 0.30));
  // Gap below 30 % but above Vth still fails.
  EXPECT_FALSE(mt::level_shifter_free(0.90, 0.70, 0.15));
}

TEST(WireModel, ElmoreDelayScalesQuadratically) {
  mt::WireModel w;
  const double d1 = w.elmore_ns(100.0, 0.0);
  const double d2 = w.elmore_ns(200.0, 0.0);
  EXPECT_NEAR(d2 / d1, 4.0, 1e-9);  // 0.5*R*C term dominates with no load
}

TEST(WireModel, LoadTermLinearInLength) {
  mt::WireModel w;
  const double base = w.elmore_ns(100.0, 10.0) - w.elmore_ns(100.0, 0.0);
  const double twice = w.elmore_ns(200.0, 10.0) - w.elmore_ns(200.0, 0.0);
  EXPECT_NEAR(twice / base, 2.0, 1e-9);
}

TEST(WireModel, MivIsCheap) {
  mt::MivModel miv;
  mt::WireModel w;
  // An MIV should cost less than a few microns of wire — that is the
  // premise of monolithic gate-level partitioning.
  EXPECT_LT(miv.delay_ns(10.0), w.elmore_ns(5.0, 10.0));
}

// ---- process corners (corners.hpp) ---------------------------------------

#include <cstdlib>

#include "tech/corners.hpp"

TEST(Corners, NominalLaneIsExactDerate) {
  mt::CornerSpec spec;
  spec.count = 8;
  spec.derate[0] = 1.0;
  spec.derate[1] = 1.05;
  spec.sigma[0] = 0.03;
  spec.sigma[1] = 0.08;
  const auto cs = mt::CornerSet::generate(spec);
  ASSERT_EQ(cs.count(), 8);
  // Corner 0 carries the systematic derate bit for bit — that is what
  // keeps sweep lane 0 identical to the scalar engine.
  EXPECT_EQ(cs.factor(0, 0), 1.0);
  EXPECT_EQ(cs.factor(1, 0), 1.05);
  for (int k = 1; k < cs.count(); ++k) {
    EXPECT_GT(cs.factor(0, k), 0.0);
    EXPECT_GT(cs.factor(1, k), 0.0);
  }
}

TEST(Corners, ZeroSigmaCollapsesToDerate) {
  mt::CornerSpec spec;
  spec.count = 16;
  spec.derate[0] = 0.97;
  spec.derate[1] = 1.12;
  const auto cs = mt::CornerSet::generate(spec);
  for (int k = 0; k < cs.count(); ++k) {
    EXPECT_EQ(cs.factor(0, k), 0.97);
    EXPECT_EQ(cs.factor(1, k), 1.12);
  }
}

TEST(Corners, PrefixStableAcrossK) {
  mt::CornerSpec a;
  a.count = 16;
  a.sigma[0] = 0.03;
  a.sigma[1] = 0.08;
  a.derate[1] = 1.05;
  mt::CornerSpec b = a;
  b.count = 64;
  const auto small = mt::CornerSet::generate(a);
  const auto large = mt::CornerSet::generate(b);
  // Corner k depends only on (seed, k): the K=16 set is a bitwise prefix
  // of the K=64 set.
  for (int t : {0, 1})
    for (int k = 0; k < small.count(); ++k)
      EXPECT_EQ(small.factor(t, k), large.factor(t, k))
          << "tier " << t << " corner " << k;
}

TEST(Corners, DeterministicAndSeedSensitive) {
  mt::CornerSpec spec;
  spec.count = 32;
  spec.sigma[0] = spec.sigma[1] = 0.1;
  const auto a = mt::CornerSet::generate(spec);
  const auto b = mt::CornerSet::generate(spec);
  for (int k = 0; k < spec.count; ++k)
    EXPECT_EQ(a.factor(0, k), b.factor(0, k));
  mt::CornerSpec other = spec;
  other.seed += 1;
  const auto c = mt::CornerSet::generate(other);
  int same = 0;
  for (int k = 1; k < spec.count; ++k)
    if (a.factor(0, k) == c.factor(0, k)) ++same;
  EXPECT_LT(same, 2);
}

TEST(Corners, CountAndFactorClamps) {
  mt::CornerSpec spec;
  spec.count = 0;
  EXPECT_EQ(mt::CornerSet::generate(spec).count(), 1);
  spec.count = 1 << 20;
  EXPECT_EQ(mt::CornerSet::generate(spec).count(), 4096);
  // A wild sigma cannot produce a negative or absurd "delay" factor.
  mt::CornerSpec wild;
  wild.count = 64;
  wild.sigma[0] = wild.sigma[1] = 50.0;
  const auto cs = mt::CornerSet::generate(wild);
  for (int t : {0, 1})
    for (int k = 0; k < cs.count(); ++k) {
      EXPECT_GE(cs.factor(t, k), 0.05);
      EXPECT_LE(cs.factor(t, k), 20.0);
    }
}

TEST(Corners, SingleCarriesExactFactors) {
  mt::CornerSpec spec;
  spec.count = 8;
  spec.sigma[0] = 0.03;
  spec.sigma[1] = 0.08;
  spec.derate[1] = 1.05;
  const auto cs = mt::CornerSet::generate(spec);
  for (int k = 0; k < cs.count(); ++k) {
    const mt::CornerSpec s = cs.single(k);
    EXPECT_EQ(s.count, 1);
    EXPECT_EQ(s.sigma[0], 0.0);
    EXPECT_EQ(s.sigma[1], 0.0);
    EXPECT_EQ(s.derate[0], cs.factor(0, k));
    EXPECT_EQ(s.derate[1], cs.factor(1, k));
    // Round trip: a set generated from single(k) has corner k's factors
    // as its (only) nominal lane.
    const auto one = mt::CornerSet::generate(s);
    EXPECT_EQ(one.count(), 1);
    EXPECT_EQ(one.factor(0, 0), cs.factor(0, k));
    EXPECT_EQ(one.factor(1, 0), cs.factor(1, k));
  }
}

TEST(Corners, EnvSpecDefaultsAndOverrides) {
  ::unsetenv("M3D_STA_CORNERS");
  ::unsetenv("M3D_TIER_SIGMA");
  ::unsetenv("M3D_TIER_DERATE");
  EXPECT_EQ(mt::corner_spec_from_env(), mt::CornerSpec{});

  ::setenv("M3D_STA_CORNERS", "16", 1);
  mt::CornerSpec spec = mt::corner_spec_from_env();
  EXPECT_EQ(spec.count, 16);
  EXPECT_EQ(spec.sigma[0], 0.03);
  EXPECT_EQ(spec.sigma[1], 0.08);
  EXPECT_EQ(spec.derate[0], 1.0);
  EXPECT_EQ(spec.derate[1], 1.05);

  ::setenv("M3D_TIER_SIGMA", "0.02,0.05", 1);
  ::setenv("M3D_TIER_DERATE", "1.1", 1);
  spec = mt::corner_spec_from_env();
  EXPECT_EQ(spec.sigma[0], 0.02);
  EXPECT_EQ(spec.sigma[1], 0.05);
  EXPECT_EQ(spec.derate[0], 1.1);
  EXPECT_EQ(spec.derate[1], 1.1);  // single value applies to both tiers

  // K <= 1 disables the sweep regardless of the other knobs.
  ::setenv("M3D_STA_CORNERS", "1", 1);
  EXPECT_EQ(mt::corner_spec_from_env(), mt::CornerSpec{});

  ::unsetenv("M3D_STA_CORNERS");
  ::unsetenv("M3D_TIER_SIGMA");
  ::unsetenv("M3D_TIER_DERATE");
}
