// Unit tests for the STA engine: propagation, slacks, rise/fall handling,
// critical-path tracing, clock latency/skew, boundary derates, macros,
// and loop detection.

#include <gtest/gtest.h>

#include "netlist/design.hpp"
#include "route/route.hpp"
#include "sta/sta.hpp"
#include "tech/library_factory.hpp"

namespace mn = m3d::netlist;
namespace mr = m3d::route;
namespace ms = m3d::sta;
namespace mt = m3d::tech;

namespace {

/// clk -> [FF launch] -> INV chain -> [FF capture], placed in a row.
struct Chain {
  mn::Netlist nl{"chain"};
  mn::CellId ff_in = mn::kInvalidId, ff_out = mn::kInvalidId;
  std::vector<mn::CellId> invs;

  explicit Chain(int n_inv) {
    const auto clk_port = nl.add_input_port("clk");
    const auto clk = nl.add_net("clk", /*is_clock=*/true);
    nl.connect(clk, nl.output_pin(clk_port));

    ff_in = nl.add_dff("ff_in", 1);
    ff_out = nl.add_dff("ff_out", 1);
    nl.connect(clk, nl.clock_pin(ff_in));
    nl.connect(clk, nl.clock_pin(ff_out));

    // Tie the launch FF's D to a port so validation passes.
    const auto din = nl.add_input_port("din");
    const auto n_d0 = nl.add_net("n_d0");
    nl.connect(n_d0, nl.output_pin(din));
    nl.connect(n_d0, nl.input_pin(ff_in, 0));

    mn::PinId prev = nl.output_pin(ff_in);
    for (int i = 0; i < n_inv; ++i) {
      const auto inv =
          nl.add_comb("inv" + std::to_string(i), mt::CellFunc::Inv, 1);
      invs.push_back(inv);
      const auto n = nl.add_net("n" + std::to_string(i));
      nl.connect(n, prev);
      nl.connect(n, nl.input_pin(inv, 0));
      prev = nl.output_pin(inv);
    }
    const auto n_last = nl.add_net("n_last");
    nl.connect(n_last, prev);
    nl.connect(n_last, nl.input_pin(ff_out, 0));
    nl.validate();
  }

  mn::Design design(double period, bool hetero = false) {
    mn::Design d(nl, mt::make_12track(),
                 hetero ? mt::make_9track() : nullptr);
    d.set_clock_period_ns(period);
    d.set_floorplan({0, 0, 200, 20});
    // Spread in a row, 10 µm apart.
    double x = 0;
    for (mn::CellId c = 0; c < d.nl().cell_count(); ++c) {
      d.set_pos(c, {x, 5.0});
      x += 10.0;
    }
    return d;
  }
};

}  // namespace

TEST(Sta, ChainTimingIsPlausible) {
  Chain ch(8);
  auto d = ch.design(1.0);
  const auto routes = mr::route_design(d);
  const auto r = ms::run_sta(d, &routes);
  // 8 × ~20 ps stages + clk→q ≪ 1 ns: positive slack, no violations.
  EXPECT_GT(r.wns(), 0.0);
  EXPECT_EQ(r.violated_endpoints(), 0);
  EXPECT_DOUBLE_EQ(r.tns(), 0.0);
  EXPECT_GE(r.endpoint_count(), 2);  // ff_out D + ff_in D (through din)
}

TEST(Sta, TightPeriodCreatesViolations) {
  Chain ch(30);
  auto d = ch.design(0.05);
  const auto routes = mr::route_design(d);
  const auto r = ms::run_sta(d, &routes);
  EXPECT_LT(r.wns(), 0.0);
  EXPECT_LT(r.tns(), r.wns() - 1e-12 + 1e-9);  // TNS ≤ WNS when violating
  EXPECT_GT(r.violated_endpoints(), 0);
}

TEST(Sta, SlackScalesOneToOneWithPeriod) {
  Chain ch(10);
  auto d1 = ch.design(1.0);
  auto d2 = ch.design(1.5);
  const auto rt1 = mr::route_design(d1);
  const auto rt2 = mr::route_design(d2);
  const double s1 = ms::run_sta(d1, &rt1).wns();
  const double s2 = ms::run_sta(d2, &rt2).wns();
  EXPECT_NEAR(s2 - s1, 0.5, 1e-9);
}

TEST(Sta, LongerChainHasLessSlack) {
  Chain a(5), b(20);
  auto da = a.design(1.0);
  auto db = b.design(1.0);
  const auto ra = mr::route_design(da);
  const auto rb = mr::route_design(db);
  EXPECT_GT(ms::run_sta(da, &ra).wns(), ms::run_sta(db, &rb).wns());
}

TEST(Sta, WiresAddDelay) {
  Chain ch(10);
  auto d = ch.design(1.0);
  const auto routes = mr::route_design(d);
  const double with_wire = ms::run_sta(d, &routes).wns();
  const double no_wire = ms::run_sta(d, nullptr).wns();
  EXPECT_LT(with_wire, no_wire);
}

TEST(Sta, CriticalPathTraceIsComplete) {
  Chain ch(12);
  auto d = ch.design(1.0);
  const auto routes = mr::route_design(d);
  const auto r = ms::run_sta(d, &routes);
  const auto cp = r.critical_path();
  // Launch FF + 12 inverters + capture FF (wire-only final stage).
  EXPECT_EQ(cp.total_cells(), 14);
  EXPECT_DOUBLE_EQ(cp.stages.back().cell_delay_ns, 0.0);
  EXPECT_EQ(d.nl().pin(cp.endpoint).cell, ch.ff_out);
  EXPECT_NEAR(cp.path_delay_ns, cp.cell_delay_ns + cp.wire_delay_ns, 1e-9);
  EXPECT_GT(cp.wirelength_um, 0.0);
  EXPECT_EQ(cp.miv_count, 0);
  // slack = T + skew - setup - path_delay for an ideal (zero-latency) clock
  EXPECT_NEAR(cp.slack_ns,
              1.0 + cp.clock_skew_ns - cp.setup_ns - cp.path_delay_ns, 1e-9);
}

TEST(Sta, CellSlackIdentifiesCriticalCells) {
  Chain ch(10);
  auto d = ch.design(1.0);
  const auto routes = mr::route_design(d);
  const auto r = ms::run_sta(d, &routes);
  // Every inverter is on the single path: all share the same worst slack.
  const double s0 = r.cell_slack(ch.invs[0]);
  for (auto inv : ch.invs) EXPECT_NEAR(r.cell_slack(inv), s0, 1e-9);
  EXPECT_NEAR(r.cell_slack(ch.ff_out), s0, 1e-9);
}

TEST(Sta, SidePathHasMoreSlack) {
  // Main chain of 10 plus a 2-inverter shortcut to a third FF.
  Chain ch(10);
  auto& nl = ch.nl;
  const auto ff3 = nl.add_dff("ff3", 1);
  nl.connect(nl.pin(nl.clock_pin(ch.ff_in)).net, nl.clock_pin(ff3));
  const auto tap = nl.add_comb("tap", mt::CellFunc::Inv, 1);
  const auto q_net = nl.pin(nl.output_pin(ch.ff_in)).net;
  nl.connect(q_net, nl.input_pin(tap, 0));
  const auto n_tap = nl.add_net("n_tap");
  nl.connect(n_tap, nl.output_pin(tap));
  nl.connect(n_tap, nl.input_pin(ff3, 0));
  nl.validate();

  mn::Design d(nl, mt::make_12track());
  d.set_clock_period_ns(1.0);
  d.set_floorplan({0, 0, 300, 20});
  double x = 0;
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c)
    d.set_pos(c, {x += 10.0, 5.0});
  const auto routes = mr::route_design(d);
  const auto r = ms::run_sta(d, &routes);
  EXPECT_GT(r.cell_slack(tap), r.cell_slack(ch.invs[5]));
  // Worst endpoint is the long chain's capture FF.
  const auto cp = r.critical_path();
  EXPECT_EQ(d.nl().pin(cp.endpoint).cell, ch.ff_out);
}

TEST(Sta, ClockLatencySkewShiftsSlack) {
  Chain ch(10);
  auto d = ch.design(1.0);
  const auto routes = mr::route_design(d);
  const double base = ms::run_sta(d, &routes).wns();

  // Positive skew (late capture clock) relaxes setup on the main path.
  d.set_clock_latency(ch.ff_out, 0.1);
  const auto r2 = ms::run_sta(d, &routes);
  const auto cp = r2.critical_path();
  EXPECT_NEAR(cp.clock_skew_ns, 0.1, 1e-12);
  EXPECT_NEAR(cp.slack_ns, base + 0.1, 1e-9);

  // Late launch clock tightens it again.
  d.set_clock_latency(ch.ff_in, 0.1);
  EXPECT_NEAR(ms::run_sta(d, &routes).critical_path().slack_ns, base, 1e-9);

  // ideal_clock ignores installed latencies.
  ms::StaOptions opt;
  opt.ideal_clock = true;
  EXPECT_NEAR(ms::run_sta(d, &routes, opt).wns(), base, 1e-9);
}

TEST(Sta, HeteroTopTierIsSlower) {
  Chain ch(10);
  auto d = ch.design(1.0, /*hetero=*/true);
  const auto routes = mr::route_design(d);
  const double all_fast = ms::run_sta(d, &routes).wns();
  for (auto inv : ch.invs) d.set_tier(inv, mn::kTopTier);
  const auto routes2 = mr::route_design(d);
  const double all_slow = ms::run_sta(d, &routes2).wns();
  EXPECT_LT(all_slow, all_fast);
  // The gap should be substantial (9T ≈ 2× stage delay).
  EXPECT_GT(all_fast - all_slow, 0.05);
}

TEST(Sta, BoundaryDeratesChangeTimingAcrossTiers) {
  Chain ch(12);
  auto d = ch.design(1.0, /*hetero=*/true);
  // Alternate tiers so every stage crosses.
  for (std::size_t i = 0; i < ch.invs.size(); i += 2)
    d.set_tier(ch.invs[i], mn::kTopTier);
  const auto routes = mr::route_design(d);
  ms::StaOptions with, without;
  without.boundary_derates = false;
  const double w = ms::run_sta(d, &routes, with).wns();
  const double wo = ms::run_sta(d, &routes, without).wns();
  EXPECT_NE(w, wo);
  // Opposite-direction errors mostly cancel on a multi-stage path
  // (paper §II-B): the net effect stays small.
  EXPECT_LT(std::abs(w - wo), 0.05);
}

TEST(Sta, CombinationalLoopThrows) {
  mn::Netlist nl("loop");
  const auto a = nl.add_comb("a", mt::CellFunc::Inv, 1);
  const auto b = nl.add_comb("b", mt::CellFunc::Inv, 1);
  const auto n1 = nl.add_net("n1");
  const auto n2 = nl.add_net("n2");
  nl.connect(n1, nl.output_pin(a));
  nl.connect(n1, nl.input_pin(b, 0));
  nl.connect(n2, nl.output_pin(b));
  nl.connect(n2, nl.input_pin(a, 0));
  mn::Design d(std::move(nl), mt::make_12track());
  EXPECT_THROW(ms::run_sta(d, nullptr), m3d::util::Error);
}

TEST(Sta, MacroLaunchAndCapture) {
  mn::Netlist nl("mem");
  const auto clk_port = nl.add_input_port("clk");
  const auto clk = nl.add_net("clk", true);
  nl.connect(clk, nl.output_pin(clk_port));
  const auto mem = nl.add_macro("mem", "SRAM_1KX32", 2, 2);
  nl.connect(clk, nl.clock_pin(mem));
  const auto ff = nl.add_dff("ff", 1);
  nl.connect(clk, nl.clock_pin(ff));
  // mem.out0 -> INV -> ff.D ; ff.Q -> mem.in0 ; port -> mem.in1
  const auto inv = nl.add_comb("inv", mt::CellFunc::Inv, 1);
  const auto n1 = nl.add_net("n1");
  nl.connect(n1, nl.output_pin(mem, 0));
  nl.connect(n1, nl.input_pin(inv, 0));
  const auto n2 = nl.add_net("n2");
  nl.connect(n2, nl.output_pin(inv));
  nl.connect(n2, nl.input_pin(ff, 0));
  const auto n3 = nl.add_net("n3");
  nl.connect(n3, nl.output_pin(ff));
  nl.connect(n3, nl.input_pin(mem, 0));
  const auto p = nl.add_input_port("p");
  const auto n4 = nl.add_net("n4");
  nl.connect(n4, nl.output_pin(p));
  nl.connect(n4, nl.input_pin(mem, 1));
  // mem.out1 dangles intentionally (unused macro output).
  nl.validate();

  mn::Design d(std::move(nl), mt::make_12track());
  d.set_clock_period_ns(1.0);
  d.set_floorplan({0, 0, 100, 100});
  const auto routes = mr::route_design(d);
  const auto r = ms::run_sta(d, &routes);
  // The mem->inv->ff path carries the 250 ps access time.
  const auto cp = r.critical_path();
  EXPECT_GT(cp.path_delay_ns, 0.25);
  EXPECT_EQ(cp.stages.front().cell, mem);
  // Endpoints include the macro inputs (setup-checked).
  bool macro_ep = false;
  for (auto ep : r.endpoints_by_slack())
    if (d.nl().pin(ep).cell == mem) macro_ep = true;
  EXPECT_TRUE(macro_ep);
}

TEST(Sta, WorstPathsAreSortedBySlack) {
  Chain ch(15);
  auto d = ch.design(0.2);
  const auto routes = mr::route_design(d);
  const auto r = ms::run_sta(d, &routes);
  const auto paths = r.worst_paths(3);
  ASSERT_GE(paths.size(), 2u);
  EXPECT_LE(paths[0].slack_ns, paths[1].slack_ns + 1e-12);
}

TEST(Sta, RiseFallBothPropagated) {
  Chain ch(3);
  auto d = ch.design(1.0);
  const auto routes = mr::route_design(d);
  const auto r = ms::run_sta(d, &routes);
  const auto din = d.nl().input_pin(ch.ff_out, 0);
  EXPECT_GT(r.pin_arrival(din), 0.0);
  EXPECT_GT(r.pin_slew(din), 0.0);
  EXPECT_LT(r.pin_slack(din), 1.0);
}

TEST(Sta, HoldAnalysisCleanOnChain) {
  // A chain of inverters between flops has plenty of min-delay: no race.
  Chain ch(8);
  auto d = ch.design(1.0);
  const auto routes = mr::route_design(d);
  const auto r = ms::run_sta(d, &routes);
  EXPECT_GT(r.whs(), 0.0);
  EXPECT_EQ(r.hold_violations(), 0);
}

TEST(Sta, HoldViolationFromCaptureClockDelay) {
  // Push the capture FF's clock very late: the direct FF->FF short path
  // races it and hold fails.
  Chain ch(1);
  auto d = ch.design(1.0);
  d.set_clock_latency(ch.ff_out, 0.5);  // capture clock 500 ps late
  const auto routes = mr::route_design(d);
  const auto r = ms::run_sta(d, &routes);
  EXPECT_LT(r.whs(), 0.0);
  EXPECT_GT(r.hold_violations(), 0);
  // Setup on that path actually benefits from the late capture clock.
  EXPECT_GT(r.wns(), 0.0);
}

TEST(Sta, HoldUsesShortestPath) {
  // Two parallel paths from FF to FF: one long (10 inv), one short (1
  // inv). Hold must see the short one even though setup sees the long.
  mn::Netlist nl("par");
  const auto clk_port = nl.add_input_port("clk");
  const auto clk = nl.add_net("clk", true);
  nl.connect(clk, nl.output_pin(clk_port));
  const auto ff_a = nl.add_dff("ffa", 1);
  const auto ff_b = nl.add_dff("ffb", 1);
  nl.connect(clk, nl.clock_pin(ff_a));
  nl.connect(clk, nl.clock_pin(ff_b));
  const auto din = nl.add_input_port("din");
  const auto n0 = nl.add_net("n0");
  nl.connect(n0, nl.output_pin(din));
  nl.connect(n0, nl.input_pin(ff_a, 0));

  const auto q = nl.add_net("q");
  nl.connect(q, nl.output_pin(ff_a));
  mn::PinId tail = mn::kInvalidId;
  {
    mn::NetId cur = q;
    for (int i = 0; i < 10; ++i) {
      const auto inv =
          nl.add_comb("long" + std::to_string(i), mt::CellFunc::Inv, 1);
      nl.connect(cur, nl.input_pin(inv, 0));
      cur = nl.add_net("ln" + std::to_string(i));
      nl.connect(cur, nl.output_pin(inv));
    }
    const auto mix = nl.add_comb("mix", mt::CellFunc::And2, 1);
    nl.connect(cur, nl.input_pin(mix, 0));
    const auto shrt = nl.add_comb("shrt", mt::CellFunc::Inv, 1);
    nl.connect(q, nl.input_pin(shrt, 0));
    const auto sn = nl.add_net("sn");
    nl.connect(sn, nl.output_pin(shrt));
    nl.connect(sn, nl.input_pin(mix, 1));
    const auto dn = nl.add_net("dn");
    nl.connect(dn, nl.output_pin(mix));
    nl.connect(dn, nl.input_pin(ff_b, 0));
    tail = nl.input_pin(ff_b, 0);
  }
  nl.validate();
  mn::Design d(std::move(nl), mt::make_12track());
  d.set_clock_period_ns(1.0);
  d.set_floorplan({0, 0, 100, 20});
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c)
    d.set_pos(c, {static_cast<double>(c), 5.0});
  const auto r = ms::run_sta(d, nullptr);
  // Min arrival at the endpoint must be far below max arrival.
  (void)tail;
  EXPECT_GT(r.whs(), 0.0);  // no forced race, but both analyses ran
  EXPECT_GT(r.wns(), 0.0);
}

TEST(Sta, HoldAnalysisCanBeDisabled) {
  Chain ch(4);
  auto d = ch.design(1.0);
  ms::StaOptions opt;
  opt.hold_analysis = false;
  const auto r = ms::run_sta(d, nullptr, opt);
  EXPECT_DOUBLE_EQ(r.whs(), 0.0);
  EXPECT_EQ(r.hold_violations(), 0);
}

// ---- incremental retime + parallel determinism ---------------------------

#include <random>

#include "exec/pool.hpp"
#include "gen/designs.hpp"
#include "place/place.hpp"

namespace mgen = m3d::gen;
namespace mpl = m3d::place;
namespace mex = m3d::exec;

#include "sanitize.hpp"  // self-shrink under TSan/ASan

namespace {

constexpr double kWideScale = M3D_TEST_WIDE_SCALE;

/// Placed, routed hetero design from a generated netlist: the realistic
/// substrate the retime() invariants are stated over.
mn::Design routed_hetero(const char* which, double scale, double period) {
  mn::Design d(mgen::make_design(which, {scale, 7}), mt::make_12track(),
               mt::make_9track());
  d.set_clock_period_ns(period);
  mpl::place_design(d);
  return d;
}

std::vector<mn::CellId> movable_std_cells(const mn::Design& d) {
  std::vector<mn::CellId> out;
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c) {
    const auto& cc = d.nl().cell(c);
    if (cc.is_comb() || cc.is_sequential()) out.push_back(c);
  }
  return out;
}

/// Exact (bitwise-value) comparison of two results over every pin.
void expect_identical(const ms::StaResult& a, const ms::StaResult& b,
                      const mn::Design& d) {
  ASSERT_EQ(a.wns(), b.wns());
  ASSERT_EQ(a.tns(), b.tns());
  ASSERT_EQ(a.whs(), b.whs());
  ASSERT_EQ(a.violated_endpoints(), b.violated_endpoints());
  ASSERT_EQ(a.hold_violations(), b.hold_violations());
  for (mn::PinId p = 0; p < d.nl().pin_count(); ++p) {
    ASSERT_EQ(a.pin_arrival(p), b.pin_arrival(p)) << "pin " << p;
    ASSERT_EQ(a.pin_slew(p), b.pin_slew(p)) << "pin " << p;
    ASSERT_EQ(a.pin_slack(p), b.pin_slack(p)) << "pin " << p;
  }
}

}  // namespace

TEST(StaRetime, MatchesFullRunAfterRandomTierMoves) {
  auto d = routed_hetero("cpu", 0.05, 0.8);
  auto routes = mr::route_design(d);
  ms::Sta sta(d, &routes);
  sta.run();

  const auto cells = movable_std_cells(d);
  std::mt19937 rng(11);
  for (int round = 0; round < 6; ++round) {
    std::uniform_int_distribution<std::size_t> pick(0, cells.size() - 1);
    std::uniform_int_distribution<int> howmany(1, 24);
    std::vector<mn::CellId> moved;
    const int k = howmany(rng);
    for (int i = 0; i < k; ++i) {
      const mn::CellId c = cells[pick(rng)];
      d.set_tier(c, 1 - d.tier(c));
      moved.push_back(c);
    }
    mr::update_routes_for_cells(d, moved, &routes);
    const auto& inc = sta.retime(moved);

    auto fresh_routes = mr::route_design(d);
    ms::Sta ref(d, &fresh_routes);
    expect_identical(inc, ref.run(), d);
  }
}

TEST(StaRetime, EmptyDirtySetKeepsResult) {
  auto d = routed_hetero("aes", 0.05, 0.7);
  auto routes = mr::route_design(d);
  ms::Sta sta(d, &routes);
  const double wns = sta.run().wns();
  const double tns = sta.result().tns();
  const auto& r = sta.retime({});
  EXPECT_EQ(r.wns(), wns);
  EXPECT_EQ(r.tns(), tns);
  ms::Sta ref(d, &routes);
  expect_identical(r, ref.run(), d);
}

TEST(StaRetime, FullDirtySetMatchesRun) {
  auto d = routed_hetero("aes", 0.05, 0.7);
  auto routes = mr::route_design(d);
  ms::Sta sta(d, &routes);
  sta.run();
  // Move a cell, then hand retime() *every* cell: the worklist degenerates
  // to a full propagation and must still agree with a fresh engine.
  const auto cells = movable_std_cells(d);
  d.set_tier(cells[cells.size() / 2], 1 - d.tier(cells[cells.size() / 2]));
  std::vector<mn::CellId> all(d.nl().cell_count());
  for (mn::CellId c = 0; c < d.nl().cell_count(); ++c) all[c] = c;
  mr::update_routes_for_cells(d, all, &routes);
  const auto& inc = sta.retime(all);
  ms::Sta ref(d, &routes);
  expect_identical(inc, ref.run(), d);
}

TEST(StaRetime, ThrowsBeforeFirstRun) {
  Chain ch(4);
  auto d = ch.design(1.0);
  ms::Sta sta(d, nullptr);
  EXPECT_THROW(sta.retime({}), m3d::util::Error);
}

TEST(Sta, ByteIdenticalAcrossPoolSizes) {
  // Wide generated design so real levels clear the parallel threshold.
  auto d = routed_hetero("netcard", kWideScale, 0.8);
  auto routes = mr::route_design(d);

  mex::Pool serial(1), wide(4);
  ms::StaOptions o1;
  o1.pool = &serial;
  ms::StaOptions o4;
  o4.pool = &wide;
  ms::Sta a(d, &routes, o1);
  ms::Sta b(d, &routes, o4);
  a.run();
  b.run();
  expect_identical(a.result(), b.result(), d);

  // And the incremental path under both pools after the same move set.
  const auto cells = movable_std_cells(d);
  std::vector<mn::CellId> moved = {cells[3], cells[cells.size() - 5],
                                   cells[cells.size() / 3]};
  for (mn::CellId c : moved) d.set_tier(c, 1 - d.tier(c));
  mr::update_routes_for_cells(d, moved, &routes);
  expect_identical(a.retime(moved), b.retime(moved), d);
}

TEST(Sta, RetimeBigBatchByteIdenticalAcrossPoolSizes) {
  // An ECO-sized batch move: enough dirty cones that per-level retime
  // buckets clear the parallel threshold, exercising the batched
  // (capture-then-recompute) path. It must stay bitwise equal to the
  // single-worker walk and to a from-scratch run on the moved design.
  auto d = routed_hetero("netcard", kWideScale, 0.8);
  auto routes = mr::route_design(d);

  mex::Pool serial(1), wide(4);
  ms::StaOptions o1;
  o1.pool = &serial;
  ms::StaOptions o4;
  o4.pool = &wide;
  ms::Sta a(d, &routes, o1);
  ms::Sta b(d, &routes, o4);
  a.run();
  b.run();

  const auto cells = movable_std_cells(d);
  std::vector<mn::CellId> moved;
  for (std::size_t i = 0; i < cells.size(); i += 3) moved.push_back(cells[i]);
  for (mn::CellId c : moved) d.set_tier(c, 1 - d.tier(c));
  mr::update_routes_for_cells(d, moved, &routes);
  expect_identical(a.retime(moved), b.retime(moved), d);

  ms::Sta fresh(d, &routes, o4);
  expect_identical(fresh.run(), b.result(), d);
}

// ---- corner-vectorized sweep ---------------------------------------------

namespace {

/// Bitwise comparison of the per-corner aggregates of two K-lane results.
void expect_corners_identical(const ms::StaResult& a, const ms::StaResult& b) {
  ASSERT_EQ(a.corner_count(), b.corner_count());
  for (int k = 0; k < a.corner_count(); ++k) {
    ASSERT_EQ(a.corner_wns(k), b.corner_wns(k)) << "corner " << k;
    ASSERT_EQ(a.corner_tns(k), b.corner_tns(k)) << "corner " << k;
    ASSERT_EQ(a.corner_violated(k), b.corner_violated(k)) << "corner " << k;
  }
  ASSERT_EQ(a.guard_wns(), b.guard_wns());
  ASSERT_EQ(a.guard_tns(), b.guard_tns());
  ASSERT_EQ(ms::timing_fingerprint(a), ms::timing_fingerprint(b));
}

}  // namespace

TEST(Sta, VectorizedK1ByteIdenticalToScalar) {
  // An explicit count=1 spec must route through exactly the scalar
  // engine: same bits at every pin, at any pool size. Sigma/seed are
  // irrelevant at K=1 (lane 0 is the pure derate).
  mt::CornerSpec one;
  one.count = 1;
  one.sigma[0] = 0.03;
  one.sigma[1] = 0.08;
  one.seed = 0x1234;

  for (const char* which : {"netcard", "mesh"}) {
    auto d = which == std::string("mesh")
                 ? [] {
                     mn::Design d2(mgen::make_mesh({1.0, 7}),
                                   mt::make_12track(), mt::make_9track());
                     d2.set_clock_period_ns(0.8);
                     mpl::place_design(d2);
                     return d2;
                   }()
                 : routed_hetero("netcard", kWideScale, 0.8);
    const auto routes = mr::route_design(d);

    ms::StaOptions scalar;  // default: no corners field touched
    ms::Sta ref(d, &routes, scalar);
    ref.run();

    for (int workers : {1, 2, 4}) {
      mex::Pool pool(workers);
      ms::StaOptions o;
      o.pool = &pool;
      o.corners = one;
      ms::Sta sta(d, &routes, o);
      sta.run();
      expect_identical(sta.result(), ref.result(), d);
      EXPECT_EQ(sta.result().corner_count(), 1);
      EXPECT_EQ(sta.result().guard_wns(), ref.result().wns());
      EXPECT_EQ(sta.result().guard_tns(), ref.result().tns());
      EXPECT_EQ(ms::timing_fingerprint(sta.result()),
                ms::timing_fingerprint(ref.result()));
    }
  }
}

TEST(Sta, CornerSweepByteIdenticalAcrossPoolSizes) {
  auto d = routed_hetero("netcard", kWideScale, 0.8);
  auto routes = mr::route_design(d);

  mt::CornerSpec spec;
  spec.count = 16;
  spec.derate[1] = 1.05;
  spec.sigma[0] = 0.03;
  spec.sigma[1] = 0.08;

  mex::Pool serial(1), two(2), wide(4);
  std::vector<ms::Sta> engines;
  for (mex::Pool* p : {&serial, &two, &wide}) {
    ms::StaOptions o;
    o.pool = p;
    o.corners = spec;
    engines.emplace_back(d, &routes, o);
    engines.back().run();
  }
  for (std::size_t i = 1; i < engines.size(); ++i) {
    expect_identical(engines[i].result(), engines[0].result(), d);
    expect_corners_identical(engines[i].result(), engines[0].result());
  }
  const auto& r = engines[0].result();
  ASSERT_EQ(r.corner_count(), 16);
  // Lane-0 aggregates mirror the nominal wns/tns bitwise.
  EXPECT_EQ(r.corner_wns(0), r.wns());
  EXPECT_EQ(r.corner_tns(0), r.tns());
  EXPECT_LE(r.guard_wns(), r.wns());
  EXPECT_LE(r.guard_tns(), r.tns());
  EXPECT_GE(r.timing_yield(r.guard_wns()), 1.0);  // floor at the worst corner
  EXPECT_GE(r.timing_yield(0.0), 0.0);
  EXPECT_LE(r.timing_yield(0.0), 1.0);

  // The incremental path carries the lanes too: a retime after tier moves
  // must match a fresh K-lane engine bit for bit, at any pool size.
  const auto cells = movable_std_cells(d);
  std::vector<mn::CellId> moved;
  for (std::size_t i = 0; i < cells.size(); i += 5) moved.push_back(cells[i]);
  for (mn::CellId c : moved) d.set_tier(c, 1 - d.tier(c));
  mr::update_routes_for_cells(d, moved, &routes);
  for (auto& e : engines) e.retime(moved);
  for (std::size_t i = 1; i < engines.size(); ++i) {
    expect_identical(engines[i].result(), engines[0].result(), d);
    expect_corners_identical(engines[i].result(), engines[0].result());
  }
  ms::StaOptions of;
  of.pool = &wide;
  of.corners = spec;
  ms::Sta fresh(d, &routes, of);
  fresh.run();
  expect_identical(fresh.result(), engines[0].result(), d);
  expect_corners_identical(fresh.result(), engines[0].result());
}

TEST(Sta, SweepLane0MatchesScalarNominalRun) {
  // Lane 0 of a K-lane sweep is the nominal corner: bitwise equal to a
  // scalar run whose derates are corner 0's exact factors. (Non-nominal
  // lanes are a delay-only guard-band model and make no such promise.)
  auto d = routed_hetero("aes", 0.05, 0.7);
  const auto routes = mr::route_design(d);

  mt::CornerSpec spec;
  spec.count = 16;
  spec.derate[1] = 1.05;
  spec.sigma[0] = 0.03;
  spec.sigma[1] = 0.08;
  const auto cs = mt::CornerSet::generate(spec);

  ms::StaOptions sweep_o;
  sweep_o.corners = spec;
  ms::Sta sweep(d, &routes, sweep_o);
  const auto& r = sweep.run();

  ms::StaOptions scalar_o;
  scalar_o.corners = cs.single(0);
  ms::Sta scalar(d, &routes, scalar_o);
  const auto& s = scalar.run();

  EXPECT_EQ(r.wns(), s.wns());
  EXPECT_EQ(r.tns(), s.tns());
  EXPECT_EQ(r.whs(), s.whs());
  EXPECT_EQ(r.violated_endpoints(), s.violated_endpoints());
  EXPECT_EQ(r.corner_wns(0), s.wns());
  EXPECT_EQ(r.corner_tns(0), s.tns());
  for (mn::PinId p = 0; p < d.nl().pin_count(); ++p) {
    ASSERT_EQ(r.pin_arrival(p), s.pin_arrival(p)) << "pin " << p;
    ASSERT_EQ(r.pin_slew(p), s.pin_slew(p)) << "pin " << p;
    ASSERT_EQ(r.pin_slack(p), s.pin_slack(p)) << "pin " << p;
  }
}

TEST(Sta, GuardBandReflectsSlowTier) {
  // With the slow tier derated up, the guard-banded WNS of a sweep can
  // only be at or below the nominal, and the fingerprint must change when
  // the corner set does (different specs are different timing views).
  auto d = routed_hetero("aes", 0.05, 0.7);
  const auto routes = mr::route_design(d);

  mt::CornerSpec spec;
  spec.count = 8;
  spec.derate[1] = 1.05;
  spec.sigma[0] = 0.03;
  spec.sigma[1] = 0.08;
  ms::StaOptions o;
  o.corners = spec;
  ms::Sta sta(d, &routes, o);
  const auto& r = sta.run();
  EXPECT_LE(r.guard_wns(), r.wns());

  mt::CornerSpec other = spec;
  other.seed += 99;
  ms::StaOptions o2;
  o2.corners = other;
  ms::Sta sta2(d, &routes, o2);
  const auto& r2 = sta2.run();
  // Nominal lane agrees (same derates), non-nominal draws differ.
  EXPECT_EQ(r.wns(), r2.wns());
  EXPECT_NE(ms::timing_fingerprint(r), ms::timing_fingerprint(r2));
}
