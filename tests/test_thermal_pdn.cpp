// Tests for the thermal and PDN extension modules (the paper's future
// work): power/current map construction, solver convergence, physical
// orderings (top tier hotter, top tier drops more, hetero cooler than
// homogeneous 12-track 3-D).

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "gen/designs.hpp"
#include "pdn/pdn.hpp"
#include "power/power.hpp"
#include "route/route.hpp"
#include "thermal/thermal.hpp"
#include "util/log.hpp"

namespace mc = m3d::core;
namespace mg = m3d::gen;
namespace mn = m3d::netlist;
namespace mp = m3d::power;
namespace mr = m3d::route;
namespace mth = m3d::thermal;
namespace mpd = m3d::pdn;

namespace {

struct FlowCase {
  mc::FlowResult flow;
  mp::PowerReport pw;

  explicit FlowCase(mc::Config cfg, const char* which = "netcard")
      : flow(make(cfg, which)),
        pw(mp::analyze_power(flow.design,
                             nullptr,  // pin-cap-only power is fine here
                             1.0 / flow.design.clock_period_ns())) {}

  static mc::FlowResult make(mc::Config cfg, const char* which) {
    m3d::util::set_log_level(m3d::util::LogLevel::Silent);
    mg::GenOptions g;
    g.scale = 0.08;
    mc::FlowOptions o;
    o.clock_period_ns = 1.1;
    o.opt.max_sizing_rounds = 1;
    o.repart.max_iters = 1;
    return mc::run_flow(mg::make_design(which, g), cfg, o);
  }
};

}  // namespace

TEST(Thermal, PowerMapConservesTotalPower) {
  FlowCase r(mc::Config::Hetero3D);
  const auto maps = mth::power_map_w(r.flow.design, r.pw, 12);
  double sum = 0.0;
  for (const auto& tier : maps)
    for (double w : tier) sum += w;
  // Clock-cell internal power is bucketed under clock_mw, so the map holds
  // switching + internal + leakage (clock net switching included at its
  // driver). Allow the clock slice as tolerance.
  EXPECT_NEAR(sum * 1000.0, r.pw.total_mw, r.pw.clock_mw + 1e-6);
  EXPECT_GT(sum, 0.0);
}

TEST(Thermal, ConvergesAboveAmbient) {
  FlowCase r(mc::Config::TwoD12T);
  mth::ThermalOptions opt;
  const auto rep = mth::analyze_thermal(r.flow.design, r.pw, opt);
  EXPECT_LT(rep.iterations, opt.max_iters);
  EXPECT_GT(rep.max_temp_c, opt.ambient_c);
  EXPECT_GE(rep.max_temp_c, rep.avg_temp_c);
  EXPECT_EQ(rep.tier_maps.size(), 1u);
}

TEST(Thermal, TopTierRunsHotterInThreeD) {
  FlowCase r(mc::Config::ThreeD12T);
  const auto rep = mth::analyze_thermal(r.flow.design, r.pw);
  // The ILD bottleneck: the top tier is farther from the sink.
  EXPECT_GT(rep.avg_temp_tier_c[1], rep.avg_temp_tier_c[0]);
  EXPECT_EQ(rep.tier_maps.size(), 2u);
}

TEST(Thermal, MorePowerMeansHotter) {
  FlowCase r(mc::Config::TwoD12T);
  const auto base = mth::analyze_thermal(r.flow.design, r.pw);
  auto hot_pw = r.pw;
  for (auto& uw : hot_pw.net_switching_uw) uw *= 3.0;
  hot_pw.switching_mw *= 3.0;
  hot_pw.total_mw = hot_pw.switching_mw + hot_pw.internal_mw +
                    hot_pw.leakage_mw + hot_pw.clock_mw;
  const auto hot = mth::analyze_thermal(r.flow.design, hot_pw);
  EXPECT_GT(hot.max_temp_c, base.max_temp_c);
}

TEST(Thermal, HeteroCoolerThanHomoTwelveTrack) {
  FlowCase hetero(mc::Config::Hetero3D);
  FlowCase homo(mc::Config::ThreeD12T);
  const auto th = mth::analyze_thermal(hetero.flow.design, hetero.pw);
  const auto tm = mth::analyze_thermal(homo.flow.design, homo.pw);
  // The 9-track top tier burns less power: the hetero stack runs cooler
  // at iso-frequency (corollary of the paper's power results).
  EXPECT_LT(th.avg_temp_c, tm.avg_temp_c + 1e-9);
}

TEST(Pdn, CurrentMapUsesTierRails) {
  FlowCase r(mc::Config::Hetero3D);
  const auto pmap = mth::power_map_w(r.flow.design, r.pw, 10);
  const auto imap = mpd::current_map_a(r.flow.design, r.pw, 10);
  // I = P / VDD, per tier.
  for (int t = 0; t < 2; ++t) {
    const double vdd = r.flow.design.lib(t).vdd();
    for (std::size_t n = 0; n < pmap[static_cast<std::size_t>(t)].size();
         ++n)
      EXPECT_NEAR(imap[static_cast<std::size_t>(t)][n],
                  pmap[static_cast<std::size_t>(t)][n] / vdd, 1e-12);
  }
}

TEST(Pdn, ConvergesWithPositiveDrop) {
  FlowCase r(mc::Config::TwoD12T);
  mpd::PdnOptions opt;
  const auto rep = mpd::analyze_pdn(r.flow.design, r.pw, opt);
  EXPECT_LT(rep.iterations, opt.max_iters);
  EXPECT_GT(rep.worst_drop_mv[0], 0.0);
  EXPECT_GE(rep.worst_drop_mv[0], rep.avg_drop_mv[0]);
  // Sanity: drop is a small fraction of the rail.
  EXPECT_LT(rep.worst_drop_pct[0], 20.0);
}

TEST(Pdn, TopTierDropsMoreInHomogeneousThreeD) {
  FlowCase r(mc::Config::ThreeD12T);
  const auto rep = mpd::analyze_pdn(r.flow.design, r.pw);
  // The top mesh hangs off power MIVs (sparser, more resistive than the
  // bump array): its worst drop exceeds the bottom tier's.
  EXPECT_GT(rep.worst_drop_mv[1], rep.worst_drop_mv[0]);
}

TEST(Pdn, HeteroTopTierDrawsLessAndDropsLess) {
  FlowCase hetero(mc::Config::Hetero3D);
  FlowCase homo(mc::Config::ThreeD12T);
  const auto rh = mpd::analyze_pdn(hetero.flow.design, hetero.pw);
  const auto rm = mpd::analyze_pdn(homo.flow.design, homo.pw);
  // The low-power top tier eases the M3D power-delivery problem.
  EXPECT_LT(rh.worst_drop_mv[1], rm.worst_drop_mv[1] + 1e-9);
}

TEST(Pdn, DenserBumpsReduceDrop) {
  FlowCase r(mc::Config::TwoD12T);
  mpd::PdnOptions sparse, dense;
  sparse.bump_pitch_nodes = 8;
  dense.bump_pitch_nodes = 2;
  const auto rs = mpd::analyze_pdn(r.flow.design, r.pw, sparse);
  const auto rd = mpd::analyze_pdn(r.flow.design, r.pw, dense);
  EXPECT_LT(rd.worst_drop_mv[0], rs.worst_drop_mv[0]);
}

// ---- parallel determinism ------------------------------------------------

#include "exec/pool.hpp"

namespace mex = m3d::exec;

TEST(Thermal, PowerMapByteIdenticalAcrossPoolSizes) {
  FlowCase r(mc::Config::Hetero3D);
  mex::Pool serial(1), wide(4);
  const auto m0 = mth::power_map_w(r.flow.design, r.pw, 12);
  const auto m1 = mth::power_map_w(r.flow.design, r.pw, 12, &serial);
  const auto m4 = mth::power_map_w(r.flow.design, r.pw, 12, &wide);
  ASSERT_EQ(m0, m1);
  ASSERT_EQ(m0, m4);
}

TEST(Thermal, SolveByteIdenticalAcrossPoolSizes) {
  FlowCase r(mc::Config::Hetero3D);
  mex::Pool serial(1), wide(4);
  mth::ThermalOptions o0;
  mth::ThermalOptions o1;
  o1.pool = &serial;
  mth::ThermalOptions o4;
  o4.pool = &wide;
  const auto t0 = mth::analyze_thermal(r.flow.design, r.pw, o0);
  const auto t1 = mth::analyze_thermal(r.flow.design, r.pw, o1);
  const auto t4 = mth::analyze_thermal(r.flow.design, r.pw, o4);
  for (const auto* t : {&t1, &t4}) {
    ASSERT_EQ(t0.max_temp_c, t->max_temp_c);
    ASSERT_EQ(t0.avg_temp_c, t->avg_temp_c);
    ASSERT_EQ(t0.iterations, t->iterations);
    ASSERT_EQ(t0.tier_maps, t->tier_maps);
  }
}
