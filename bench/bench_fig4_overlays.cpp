// Reproduces paper Fig. 4: detailed overlays on the heterogeneous-3-D CPU
// layout — (a) the clock tree, (b) the memory nets (into the macros vs out
// of them, in different colors), and (c) the critical path. The 2-D
// 12-track counterparts are emitted too, matching the paper's side-by-side
// comparison.

#include <cstdio>

#include "common.hpp"
#include "io/svg.hpp"
#include "util/table.hpp"

using namespace m3d;

int main() {
  bench::quiet_logs();
  const auto nl = bench::build("cpu");
  const double period = bench::target_period_ns(nl);
  std::printf("[cpu] cells=%d target=%.3f GHz\n", nl.stats().cells,
              1.0 / period);
  std::fflush(stdout);

  const std::string dir = bench::artifact_dir();
  util::TextTable t("Fig. 4 — clock tree / memory nets / critical path");
  t.header({"Implementation", "Overlay", "SVG"});

  struct Impl {
    core::Config cfg;
    const char* tag;
  };
  for (const auto& impl : {Impl{core::Config::TwoD12T, "2d_12t"},
                           Impl{core::Config::Hetero3D, "hetero_3d"}}) {
    auto res = bench::run_config(nl, impl.cfg, period);

    io::SvgOptions clock_opt;
    clock_opt.overlay = io::Overlay::ClockTree;
    t.row({core::config_name(impl.cfg), "clock tree",
           io::write_layout_svg(res.design,
                                dir + "/fig4a_clock_" + impl.tag + ".svg",
                                clock_opt)});

    io::SvgOptions mem_opt;
    mem_opt.overlay = io::Overlay::MemoryNets;
    t.row({core::config_name(impl.cfg), "memory nets",
           io::write_layout_svg(res.design,
                                dir + "/fig4b_memnets_" + impl.tag + ".svg",
                                mem_opt)});

    io::SvgOptions cp_opt;
    cp_opt.overlay = io::Overlay::CriticalPath;
    cp_opt.critical_path = &res.metrics.critical_path;
    t.row({core::config_name(impl.cfg), "critical path",
           io::write_layout_svg(res.design,
                                dir + "/fig4c_critpath_" + impl.tag + ".svg",
                                cp_opt)});
  }
  t.print();
  return 0;
}
