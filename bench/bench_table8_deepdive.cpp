// Reproduces paper Table VIII: in-depth clock-network, critical-path and
// memory-interconnect analysis of the CPU design across the best 2-D
// implementation (12-track), the best homogeneous 3-D (12-track) and the
// heterogeneous 3-D.
//
// (The journal table's first column is labeled "9-track 2D", but §IV-C's
// prose says "best 2-D implementation (12-track)" — we follow the prose;
// see EXPERIMENTS.md.)
//
// Shape targets: memory-net latency and switching power improve 2D → 3D →
// hetero; the hetero clock tree is top-die-heavy with smaller buffer area
// but worse max latency/skew; the hetero critical path concentrates on the
// fast bottom tier, with the few slow-tier cells contributing an outsized
// share of delay (avg 9T stage ≈ 2× the 12T stage delay).

#include <cstdio>

#include "common.hpp"
#include "io/reports.hpp"
#include "util/table.hpp"

using namespace m3d;

int main() {
  bench::quiet_logs();
  // Three implementations of the CPU design as one cached sweep; the
  // 2D-12T run is the frequency search's own winning flow (cache hit).
  bench::SweepOptions sweep;
  sweep.netlists = {"cpu"};
  sweep.configs = {core::Config::TwoD12T, core::Config::ThreeD12T,
                   core::Config::Hetero3D};
  const auto items = bench::run_sweep(sweep);
  std::printf("[cpu] cells=%d target=%.3f GHz\n", items.front().cells,
              1.0 / items.front().period_ns);
  std::fflush(stdout);

  std::vector<core::DesignMetrics> impls;
  for (const auto& item : items) impls.push_back(item.metrics());

  io::table8_deepdive(impls).print();

  // The paper's headline stage-delay contrast: ~19 ps per 12-track stage
  // everywhere vs ~45 ps per 9-track stage on the hetero top tier
  // (averaged over the 100 worst paths for stability).
  const auto& het = impls.back();
  std::printf(
      "\nHetero worst-100-path stage delays: bottom (12T) %.1f ps/cell, "
      "top (9T) %.1f ps/cell (paper: ~19 vs ~45 ps)\n",
      het.avg_stage_delay_tier_ns[0] * 1000.0,
      het.avg_stage_delay_tier_ns[1] * 1000.0);
  return 0;
}
