// Ablation: COVER-cell unified 3-D CTS vs the macro-style per-die trees
// (paper §III-A2). The COVER-cell representation lets the clock optimizer
// see the whole 3-D sink set; treating the other die's cells as macros
// breaks the tree into per-die islands.

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

using namespace m3d;
using util::TextTable;

int main() {
  bench::quiet_logs();
  const auto nl = bench::build("cpu");
  const double period = bench::target_period_ns(nl);
  std::printf("[cpu] cells=%d target=%.3f GHz\n", nl.stats().cells,
              1.0 / period);
  std::fflush(stdout);

  TextTable t("Ablation — 3-D CTS mode on the heterogeneous CPU");
  t.header({"Metric", "COVER-cell (paper)", "per-die (macro-style)"});

  auto opts_cover = bench::flow_options(period);
  opts_cover.enable_cover_cts = true;
  auto opts_perdie = bench::flow_options(period);
  opts_perdie.enable_cover_cts = false;

  const auto a = core::run_flow(nl, core::Config::Hetero3D, opts_cover);
  const auto b = core::run_flow(nl, core::Config::Hetero3D, opts_perdie);

  auto row = [&](const char* name, auto get, int prec) {
    t.row({name, TextTable::num(get(a.metrics), prec),
           TextTable::num(get(b.metrics), prec)});
  };
  row("Clock buffers", [](const core::DesignMetrics& m) {
    return static_cast<double>(m.clock.buffer_count);
  }, 0);
  row("Top-tier buffers", [](const core::DesignMetrics& m) {
    return static_cast<double>(m.clock.buffer_count_tier[1]);
  }, 0);
  row("Clock buffer area (um2)", [](const core::DesignMetrics& m) {
    return m.clock.buffer_area_um2;
  }, 0);
  row("Clock power (mW)", [](const core::DesignMetrics& m) {
    return m.clock_power_mw;
  }, 2);
  row("Max latency (ns)", [](const core::DesignMetrics& m) {
    return m.clock.max_latency_ns;
  }, 3);
  row("Max skew (ns)", [](const core::DesignMetrics& m) {
    return m.clock.max_skew_ns;
  }, 3);
  row("WNS (ns)", [](const core::DesignMetrics& m) { return m.wns_ns; }, 3);
  row("Total power (mW)", [](const core::DesignMetrics& m) {
    return m.total_power_mw;
  }, 1);
  t.print();
  return 0;
}
