// Extension bench — the paper's stated future work (§V): thermal and
// power-delivery behaviour of heterogeneous monolithic 3-D ICs.
//
// Compares 2D-12T / 3D-12T / Hetero-3D on the CPU design at
// iso-frequency:
//  * steady-state temperature field (grid solver, ILD-bottleneck model);
//  * PDN IR-drop (bump array on the bottom tier, power-MIV-fed top tier).
//
// Expected shape: stacking runs hotter than 2-D (same power, half the
// sink area); the heterogeneous stack runs cooler and drops less on the
// top tier than homogeneous 12-track 3-D because the 9-track die draws
// less power — the corollary of the paper's power results that makes
// heterogeneity attractive for exactly the two problems it left open.

#include <cstdio>

#include "common.hpp"
#include "pdn/pdn.hpp"
#include "power/power.hpp"
#include "route/route.hpp"
#include "thermal/thermal.hpp"
#include "util/table.hpp"

using namespace m3d;
using util::TextTable;

int main() {
  bench::quiet_logs();
  const auto nl = bench::build("cpu");
  const double period = bench::target_period_ns(nl);
  std::printf("[cpu] cells=%d target=%.3f GHz\n", nl.stats().cells,
              1.0 / period);
  std::fflush(stdout);

  TextTable t("Future-work extension — thermal & PDN across "
              "implementations (CPU, iso-frequency)");
  t.header({"Metric", "2D-12T", "3D-12T", "Hetero-3D"});

  struct Row {
    double power, tmax, tavg, ttop, drop_bot, drop_top, drop_pct_top;
  };
  std::vector<Row> rows;
  for (auto cfg : {core::Config::TwoD12T, core::Config::ThreeD12T,
                   core::Config::Hetero3D}) {
    auto res = bench::run_config(nl, cfg, period);
    const auto routes = route::route_design(res.design);
    const auto pw = power::analyze_power(res.design, &routes, 1.0 / period);
    const auto th = thermal::analyze_thermal(res.design, pw);
    const auto pd = pdn::analyze_pdn(res.design, pw);
    const bool is3d = res.design.num_tiers() == 2;
    rows.push_back({pw.total_mw, th.max_temp_c, th.avg_temp_c,
                    is3d ? th.avg_temp_tier_c[1] : 0.0, pd.worst_drop_mv[0],
                    is3d ? pd.worst_drop_mv[1] : 0.0,
                    is3d ? pd.worst_drop_pct[1] : 0.0});
  }

  auto row = [&](const char* name, auto get, int prec) {
    std::vector<std::string> cells{name};
    for (const auto& r : rows) cells.push_back(TextTable::num(get(r), prec));
    t.row(cells);
  };
  row("Total power (mW)", [](const Row& r) { return r.power; }, 1);
  row("Max temperature (C)", [](const Row& r) { return r.tmax; }, 2);
  row("Avg temperature (C)", [](const Row& r) { return r.tavg; }, 2);
  row("Top-tier avg temp (C)", [](const Row& r) { return r.ttop; }, 2);
  row("Worst IR drop, bottom (mV)",
      [](const Row& r) { return r.drop_bot; }, 2);
  row("Worst IR drop, top (mV)", [](const Row& r) { return r.drop_top; }, 2);
  row("Top drop (% of tier VDD)",
      [](const Row& r) { return r.drop_pct_top; }, 2);
  t.print();

  std::printf(
      "Shape checks: 3-D hotter than 2-D at equal power; hetero cooler and "
      "with less top-tier drop than homogeneous 12-track 3-D.\n");
  return 0;
}
