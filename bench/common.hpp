#pragma once
/// \file common.hpp
/// \brief Shared machinery for the paper-reproduction benches: netlist
///        construction at a bench scale, the iso-performance frequency
///        targeting methodology of §IV-A2, and flow-run helpers.
///
/// Environment knobs:
///   M3D_BENCH_SCALE — netlist width multiplier (default 0.5; the paper's
///                     netlists are 150k–250k cells, the default keeps a
///                     full 4×5 sweep in tens of seconds).
///   M3D_BENCH_OUT   — directory for SVG/CSV artifacts (default
///                     "bench_artifacts").

#include <string>
#include <vector>

#include "core/flow.hpp"
#include "gen/designs.hpp"
#include "netlist/netlist.hpp"

namespace m3d::bench {

/// Netlist width multiplier from M3D_BENCH_SCALE.
double bench_scale();

/// Artifact directory from M3D_BENCH_OUT (created if missing).
std::string artifact_dir();

/// The paper's four evaluation netlists, in its column order.
const std::vector<std::string>& netlist_names();

/// Build one evaluation netlist at the bench scale.
netlist::Netlist build(const std::string& name);

/// Flow options tuned for bench runs.
core::FlowOptions flow_options(double period_ns);

/// Per-netlist flow options (LDPC runs at lower utilization — the paper's
/// wire-dominance observation).
core::FlowOptions flow_options_for(const std::string& netlist_name,
                                   double period_ns);

/// The paper's frequency methodology: sweep the 12-track 2-D
/// implementation to its maximum achievable frequency (WNS within ~7 % of
/// the period) and use that as the iso-performance target for every other
/// configuration of the same netlist. Returns the target period (ns).
double target_period_ns(const netlist::Netlist& nl);

/// Run one configuration at the given period.
core::FlowResult run_config(const netlist::Netlist& nl, core::Config cfg,
                            double period_ns);

/// Silence the flow logs (benches print tables, not logs).
void quiet_logs();

}  // namespace m3d::bench
