#pragma once
/// \file common.hpp
/// \brief Shared machinery for the paper-reproduction benches: netlist
///        construction at a bench scale, the iso-performance frequency
///        targeting methodology of §IV-A2, and flow-run helpers.
///
/// Environment knobs:
///   M3D_BENCH_SCALE — netlist width multiplier (default 0.5; the paper's
///                     netlists are 150k–250k cells, the default keeps a
///                     full 4×5 sweep in tens of seconds).
///   M3D_BENCH_OUT   — directory for SVG/CSV artifacts (default
///                     "bench_artifacts").
///   M3D_STA_CORNERS / M3D_TIER_SIGMA / M3D_TIER_DERATE — multi-corner
///                     signoff spec (tech::corner_spec_from_env), threaded
///                     into every flow's FlowOptions::sta_corners.

#include <string>
#include <vector>

#include "core/flow.hpp"
#include "exec/flow_cache.hpp"
#include "gen/designs.hpp"
#include "netlist/netlist.hpp"

namespace m3d::bench {

/// Netlist width multiplier from M3D_BENCH_SCALE.
double bench_scale();

/// Artifact directory from M3D_BENCH_OUT (created if missing).
std::string artifact_dir();

/// The paper's four evaluation netlists, in its column order.
const std::vector<std::string>& netlist_names();

/// Build one evaluation netlist at the bench scale.
netlist::Netlist build(const std::string& name);

/// Flow options tuned for bench runs.
core::FlowOptions flow_options(double period_ns);

/// Per-netlist flow options (LDPC runs at lower utilization — the paper's
/// wire-dominance observation).
core::FlowOptions flow_options_for(const std::string& netlist_name,
                                   double period_ns);

/// The paper's frequency methodology: sweep the 12-track 2-D
/// implementation to its maximum achievable frequency (WNS within ~7 % of
/// the period) and use that as the iso-performance target for every other
/// configuration of the same netlist. Returns the target period (ns).
/// `ctx` selects the pool/cache (nullptr = process-wide defaults).
double target_period_ns(const netlist::Netlist& nl,
                        const exec::Ctx* ctx = nullptr);

/// Run one configuration at the given period, memoized in the context's
/// flow cache (a repeated (netlist, config, period) run is a lookup).
exec::FlowCache::ResultPtr run_config_cached(const netlist::Netlist& nl,
                                             core::Config cfg,
                                             double period_ns,
                                             const exec::Ctx* ctx = nullptr);

/// Run one configuration at the given period (value-returning wrapper
/// around run_config_cached, kept for the simpler benches).
core::FlowResult run_config(const netlist::Netlist& nl, core::Config cfg,
                            double period_ns);

/// One cell of a sweep: a (netlist, config) pair evaluated at that
/// netlist's iso-performance period.
struct SweepItem {
  std::string netlist;
  core::Config cfg = core::Config::Hetero3D;
  double period_ns = 0.0;
  int cells = 0;  ///< std-cell count of the *input* netlist
  exec::FlowCache::ResultPtr result;

  const core::DesignMetrics& metrics() const { return result->metrics; }
};

/// Sweep shape and execution knobs for run_sweep.
struct SweepOptions {
  std::vector<std::string> netlists;  ///< empty → netlist_names()
  std::vector<core::Config> configs;  ///< empty → all five (paper order)
  /// Period for every run (>0), or 0 for the paper's per-netlist
  /// iso-performance target (12-track 2-D maximum frequency).
  double fixed_period_ns = 0.0;
  int threads = 0;                    ///< >0: private pool of that size
  exec::FlowCache* cache = nullptr;   ///< nullptr → FlowCache::global()
};

/// Fan a netlist × config grid across the pool as a task graph: each
/// netlist's build feeds its frequency-search node, which feeds that
/// netlist's per-config flows — so flows of a fast netlist start while a
/// slow netlist is still searching. Results come back in deterministic
/// (netlist-major, config-minor) order and are bit-identical at any
/// thread count.
std::vector<SweepItem> run_sweep(const SweepOptions& opt = {});

/// Silence the flow logs (benches print tables, not logs).
void quiet_logs();

/// Peak resident-set size of this process so far (kB, getrusage
/// ru_maxrss; 0 where unsupported). Monotone over the process lifetime,
/// so size sweeps should run ascending and read it after each point.
long peak_rss_kb();

}  // namespace m3d::bench
