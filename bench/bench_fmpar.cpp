/// \file bench_fmpar.cpp
/// \brief BENCH_fmpar: serial vs speculative FM partitioning wall-clock
///        and conflict/retry rates across pool sizes.
///
/// Runs bin-based FM tier partitioning (the flow's partition hot path) on
/// a placed mesh fabric, once with speculation forced off (the serial
/// reference) and once speculative at pool sizes 1/2/4, restoring the
/// identical pre-partition tier assignment before every run. The final
/// cut and the full tier vector are asserted byte-identical across every
/// run — the engine's determinism contract — so the numbers compare the
/// *same* computation, not merely similar ones.
///
/// Emits <artifact_dir>/BENCH_fmpar.json with, per pool size: pass time,
/// speedup vs serial, speculation-round counts, and the conflict and
/// retry (conflict+mispredict) rates per committed move. On a 1-CPU host
/// (the CI VM) the pool-1 row degenerates to the serial engine and wider
/// pools oversubscribe — the artifact records whatever the host honestly
/// produced. Note the expected shape: a single FM gain evaluation is only
/// ~a few hundred ns, so at bench scales the per-round fork/join barrier
/// is on the same order as the round's useful work and speculation breaks
/// even or trails serial. The engine's value here is the determinism
/// contract plus headroom as per-move evaluation cost grows (timing-driven
/// gain models); the conflict/retry columns are the honest cost signal.
///
/// Knobs: M3D_FMPAR_SCALE — mesh generator scale (default 4, ~41k cells).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/flow.hpp"
#include "exec/pool.hpp"
#include "gen/designs.hpp"
#include "part/fm.hpp"
#include "place/place.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Run {
  int pool = 0;
  int speculate = 0;
  double part_s = 0.0;
  int cut = 0;
  m3d::part::FmStats stats;
};

}  // namespace

int main() {
  m3d::bench::quiet_logs();

  double scale = 4.0;
  if (const char* s = std::getenv("M3D_FMPAR_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) scale = v;
  }

  m3d::gen::GenOptions g;
  g.scale = scale;
  m3d::netlist::Netlist nl = m3d::gen::make_mesh(g);
  const auto st = nl.stats();
  m3d::netlist::Design d =
      m3d::core::design_for_config(nl, m3d::core::Config::ThreeD12T);
  m3d::place::PlaceOptions popt;
  m3d::place::init_floorplan(d, popt);
  m3d::place::global_place(d, popt);

  // Snapshot the pre-partition tier assignment; every run starts from it.
  std::vector<int> tier0(static_cast<std::size_t>(d.nl().cell_count()));
  for (m3d::netlist::CellId c = 0; c < d.nl().cell_count(); ++c)
    tier0[static_cast<std::size_t>(c)] = d.tier(c);
  auto restore = [&] {
    for (m3d::netlist::CellId c = 0; c < d.nl().cell_count(); ++c)
      d.set_tier(c, tier0[static_cast<std::size_t>(c)]);
  };

  auto one_run = [&](int pool_size, int speculate) {
    Run r;
    r.pool = pool_size;
    r.speculate = speculate;
    restore();
    m3d::exec::Pool pool(pool_size);
    m3d::part::FmOptions opt;
    opt.pool = &pool;
    opt.speculate = speculate;
    opt.stats = &r.stats;
    const auto t = Clock::now();
    r.cut = m3d::part::bin_fm_partition(d, opt);
    r.part_s = seconds_since(t);
    return r;
  };

  std::printf("mesh scale %g: %d cells, %d nets\n", scale, st.cells,
              st.nets);
  std::printf("%6s %5s %8s %8s %8s %10s %10s %10s %9s %9s\n", "pool",
              "spec", "part_s", "speedup", "cut", "spec_com", "serial_com",
              "rounds", "conflict%", "retry%");

  std::vector<Run> runs;
  runs.push_back(one_run(1, /*speculate=*/0));  // serial reference
  for (int pool_size : {1, 2, 4})
    runs.push_back(one_run(pool_size, /*speculate=*/1));

  const Run& ref = runs.front();
  bool identical = true;
  // The cut alone is a weak identity; re-run and diff full tier vectors
  // against the serial reference.
  auto tiers_of = [&](int pool_size, int speculate) {
    one_run(pool_size, speculate);
    std::vector<int> t(static_cast<std::size_t>(d.nl().cell_count()));
    for (m3d::netlist::CellId c = 0; c < d.nl().cell_count(); ++c)
      t[static_cast<std::size_t>(c)] = d.tier(c);
    return t;
  };
  const auto ref_tiers = tiers_of(1, 0);
  for (int pool_size : {2, 4})
    if (tiers_of(pool_size, 1) != ref_tiers) identical = false;

  for (const Run& r : runs) {
    if (r.cut != ref.cut) identical = false;
    const long long committed =
        std::max(1LL, r.stats.spec_commits + r.stats.serial_commits);
    const double conflict_pct =
        100.0 * static_cast<double>(r.stats.conflicts) /
        static_cast<double>(committed);
    const double retry_pct =
        100.0 *
        static_cast<double>(r.stats.conflicts + r.stats.mispredicts) /
        static_cast<double>(committed);
    std::printf("%6d %5d %8.3f %8.2f %8d %10lld %10lld %10lld %9.2f %9.2f\n",
                r.pool, r.speculate, r.part_s, ref.part_s / r.part_s, r.cut,
                r.stats.spec_commits, r.stats.serial_commits,
                r.stats.spec_rounds, conflict_pct, retry_pct);
  }
  std::printf("identity check: %s\n", identical ? "ok" : "MISMATCH");

  const std::string path = m3d::bench::artifact_dir() + "/BENCH_fmpar.json";
  std::ofstream os(path);
  os << "{\n  \"design\": \"mesh\",\n  \"scale\": " << scale
     << ",\n  \"cells\": " << st.cells << ",\n  \"nets\": " << st.nets
     << ",\n  \"identical_results\": " << (identical ? "true" : "false")
     << ",\n  \"host_threads\": "
     << m3d::exec::Pool::default_threads() << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    const long long committed =
        std::max(1LL, r.stats.spec_commits + r.stats.serial_commits);
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"pool\": %d, \"speculate\": %d, \"part_s\": %.3f, "
        "\"speedup\": %.3f, \"cut\": %d, \"moves\": %lld, "
        "\"spec_rounds\": %lld, \"predicted\": %lld, "
        "\"spec_commits\": %lld, \"serial_commits\": %lld, "
        "\"conflicts\": %lld, \"mispredicts\": %lld, "
        "\"conflict_rate\": %.4f, \"retry_rate\": %.4f}%s\n",
        r.pool, r.speculate, r.part_s, ref.part_s / r.part_s, r.cut,
        r.stats.moves, r.stats.spec_rounds, r.stats.predicted,
        r.stats.spec_commits, r.stats.serial_commits, r.stats.conflicts,
        r.stats.mispredicts,
        static_cast<double>(r.stats.conflicts) /
            static_cast<double>(committed),
        static_cast<double>(r.stats.conflicts + r.stats.mispredicts) /
            static_cast<double>(committed),
        i + 1 < runs.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return identical ? 0 : 1;
}
