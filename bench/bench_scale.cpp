/// \file bench_scale.cpp
/// \brief BENCH_scale: flow wall-clock and peak RSS vs cell count on the
///        mesh fabric, proving the million-cell hot paths stay near-linear.
///
/// Sweeps the parameterized mesh/NoC design across generator scales
/// (default 1, 4, 16, 100 → roughly 10k, 41k, 164k and 1M cells) and runs
/// the structural half of the flow at each point — generate, global
/// place, bin-FM tier partition + legalize, CTS + re-legalize, route —
/// timing every stage and sampling the process peak RSS after each point.
/// The stage order mirrors run_flow; in particular CTS replaces the raw
/// clock net before routing, exactly as the full flow does.
///
/// Emits <artifact_dir>/BENCH_scale.json with, per point: cell/net
/// counts, per-stage and total seconds, peak RSS, and `linear_ratio` —
/// (total_s / cells) normalized to the first (smallest) point. A curve
/// whose ratios stay near 1.0 is linear in the cell count; the CI
/// scale-smoke job asserts a budgeted single point, the full sweep is for
/// the artifact.
///
/// Knobs: M3D_SCALE_POINTS — comma-separated generator scales (e.g.
/// "1,4,16"); sizes always run ascending so the monotone peak-RSS
/// readings stay attributable. With M3D_STA_CORNERS > 1 each point also
/// runs a post-route multi-corner STA sweep (tech::corner_spec_from_env)
/// and records its wall-clock as `sta_s` — the K-lane sweep must ride the
/// same near-linear curve as the structural stages.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/flow.hpp"
#include "cts/cts.hpp"
#include "exec/pool.hpp"
#include "gen/designs.hpp"
#include "part/fm.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "sta/sta.hpp"
#include "tech/corners.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<double> scale_points() {
  std::vector<double> pts;
  if (const char* s = std::getenv("M3D_SCALE_POINTS")) {
    std::string buf(s);
    std::size_t pos = 0;
    while (pos < buf.size()) {
      std::size_t next = buf.find(',', pos);
      if (next == std::string::npos) next = buf.size();
      const double v = std::atof(buf.substr(pos, next - pos).c_str());
      if (v > 0.0) pts.push_back(v);
      pos = next + 1;
    }
  }
  if (pts.empty()) pts = {1.0, 4.0, 16.0, 100.0};
  std::sort(pts.begin(), pts.end());
  return pts;
}

struct Point {
  double scale = 0.0;
  int cells = 0;
  int nets = 0;
  double gen_s = 0.0;
  double place_s = 0.0;
  double part_s = 0.0;
  double cts_s = 0.0;
  double route_s = 0.0;
  double sta_s = 0.0;   ///< multi-corner sweep; 0 when M3D_STA_CORNERS off
  int sta_corners = 1;
  double total_s = 0.0;
  long rss_kb = 0;
  double wirelength_um = 0.0;
  int cut = 0;
};

}  // namespace

int main() {
  m3d::bench::quiet_logs();

  std::vector<Point> points;
  std::printf("%10s %9s %9s %8s %8s %8s %8s %8s %8s %10s %7s\n", "scale",
              "cells", "nets", "gen_s", "place_s", "part_s", "cts_s",
              "route_s", "total_s", "rss_kb", "ratio");
  for (const double scale : scale_points()) {
    Point p;
    p.scale = scale;
    const auto t_total = Clock::now();

    auto t = Clock::now();
    m3d::gen::GenOptions g;
    g.scale = scale;
    m3d::netlist::Netlist nl = m3d::gen::make_mesh(g);
    p.gen_s = seconds_since(t);
    const auto st = nl.stats();
    p.cells = st.cells;
    p.nets = st.nets;

    m3d::netlist::Design d =
        m3d::core::design_for_config(nl, m3d::core::Config::ThreeD12T);

    // Stage order follows run_flow's pseudo-3-D recipe: global-place at
    // the folded footprint, tier-partition, then per-tier legalization
    // (legalizing pre-partition would overfill the folded tier).
    t = Clock::now();
    m3d::place::PlaceOptions popt;
    m3d::place::init_floorplan(d, popt);
    m3d::place::global_place(d, popt);
    p.place_s = seconds_since(t);

    t = Clock::now();
    m3d::part::FmOptions fopt;
    p.cut = m3d::part::bin_fm_partition(d, fopt);
    m3d::place::legalize(d);
    p.part_s = seconds_since(t);

    // CTS before routing, as in run_flow: the raw clock net (2·lw per
    // router tile — 400k sinks at scale 100) is replaced by a buffered
    // tree of small subnets. Routing the raw net instead would walk
    // Θ(k^1.5) tree-path hops for the per-sink delays, which no real
    // flow stage does.
    t = Clock::now();
    m3d::cts::build_clock_tree(d);
    m3d::place::legalize(d);
    p.cts_s = seconds_since(t);

    // Route on the shared pool, as run_flow does; per-net results and
    // totals are byte-identical to a serial route at any pool size.
    t = Clock::now();
    const auto est =
        m3d::route::route_design(d, {&m3d::exec::Pool::global()});
    p.route_s = seconds_since(t);
    p.wirelength_um = est.total_wirelength_um;

    // Optional multi-corner sweep on the routed point: one K-lane STA
    // pass over the same graph the flow's signoff would walk.
    const auto cspec = m3d::tech::corner_spec_from_env();
    if (cspec.count > 1) {
      t = Clock::now();
      m3d::sta::StaOptions sopt;
      sopt.pool = &m3d::exec::Pool::global();
      sopt.corners = cspec;
      m3d::sta::run_sta(d, &est, sopt);
      p.sta_s = seconds_since(t);
      p.sta_corners = cspec.count;
    }

    p.total_s = seconds_since(t_total);
    p.rss_kb = m3d::bench::peak_rss_kb();
    points.push_back(p);

    const double base =
        points.front().total_s / std::max(1, points.front().cells);
    const double ratio = (p.total_s / std::max(1, p.cells)) / base;
    std::printf("%10.1f %9d %9d %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %10ld "
                "%7.2f\n",
                p.scale, p.cells, p.nets, p.gen_s, p.place_s, p.part_s,
                p.cts_s, p.route_s, p.total_s, p.rss_kb, ratio);
    std::fflush(stdout);
  }

  const std::string path = m3d::bench::artifact_dir() + "/BENCH_scale.json";
  std::ofstream os(path);
  const double base =
      points.front().total_s / std::max(1, points.front().cells);
  os << "{\n  \"design\": \"mesh\",\n  \"stages\": "
        "\"generate+place+partition+cts+route\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const double ratio = (p.total_s / std::max(1, p.cells)) / base;
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"scale\": %g, \"cells\": %d, \"nets\": %d, \"gen_s\": %.3f, "
        "\"place_s\": %.3f, \"part_s\": %.3f, \"cts_s\": %.3f, "
        "\"route_s\": %.3f, \"sta_s\": %.3f, \"sta_corners\": %d, "
        "\"total_s\": %.3f, \"peak_rss_kb\": %ld, \"wirelength_um\": %.0f, "
        "\"cut\": %d, \"linear_ratio\": %.3f}%s\n",
        p.scale, p.cells, p.nets, p.gen_s, p.place_s, p.part_s, p.cts_s,
        p.route_s, p.sta_s, p.sta_corners, p.total_s, p.rss_kb,
        p.wirelength_um, p.cut, ratio, i + 1 < points.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
