// Ablation: the timing-partition area cap (paper §III-A1 uses 20–30 %).
//
// Too small a cap leaves critical cells on the slow tier (bad WNS); too
// large a cap pins dense physical clusters to one die, unbalancing the
// placement (the paper's stated reason for limiting it) — visible here as
// growing cut size, wirelength and footprint.

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

using namespace m3d;
using util::TextTable;

int main() {
  bench::quiet_logs();
  const auto nl = bench::build("cpu");
  const double period = bench::target_period_ns(nl);
  std::printf("[cpu] cells=%d target=%.3f GHz\n", nl.stats().cells,
              1.0 / period);
  std::fflush(stdout);

  TextTable t("Ablation — timing-partition area cap (CPU, iso-frequency; "
              "paper default 20-30 %)");
  t.header({"Area cap", "Pinned cells", "Cut", "WNS (ns)", "WL (m)",
            "Si area (mm2)", "Power (mW)", "PPC"});
  for (double cap : {0.05, 0.10, 0.20, 0.25, 0.30, 0.40, 0.50}) {
    auto opts = bench::flow_options(period);
    opts.timing_part.area_cap = cap;
    const auto res = core::run_flow(nl, core::Config::Hetero3D, opts);
    t.row({TextTable::num(cap * 100.0, 0) + "%",
           TextTable::integer(res.timing_part.pinned_cells),
           TextTable::integer(res.timing_part.cut),
           TextTable::num(res.metrics.wns_ns, 3),
           TextTable::num(res.metrics.wirelength_m, 3),
           TextTable::num(res.metrics.silicon_area_mm2, 4),
           TextTable::num(res.metrics.total_power_mw, 1),
           TextTable::num(res.metrics.ppc, 3)});
  }
  t.print();
  return 0;
}
