// Ablation: cell-based vs path-based timing criticality for the
// heterogeneous tier partitioning (paper §III-A1 vs Samal et al. [14]).
//
// The paper's argument: path-based selection cannot reach full coverage —
// missing even a few critical cells on the slow tier wrecks timing. The
// cell-based sweep (worst slack among all paths through each cell) covers
// every cell by construction. Expect the cell-based flow to pin more cells
// under the same area budget and land at materially better WNS/TNS.

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

using namespace m3d;
using util::TextTable;

int main() {
  bench::quiet_logs();
  const auto nl = bench::build("cpu");
  const double period = bench::target_period_ns(nl);
  std::printf("[cpu] cells=%d target=%.3f GHz\n", nl.stats().cells,
              1.0 / period);
  std::fflush(stdout);

  struct Variant {
    const char* name;
    bool path_based;
    bool timing_partition;
    int paths;
  };
  const Variant variants[] = {
      {"cell-based (paper)", false, true, 0},
      {"path-based, 50 paths [14]", true, true, 50},
      {"path-based, 200 paths [14]", true, true, 200},
      {"no timing partition (min-cut)", false, false, 0},
  };

  TextTable t("Ablation — criticality model for timing-based partitioning "
              "(CPU, iso-frequency)");
  t.header({"Variant", "Pinned cells", "WNS (ns)", "TNS (ns)",
            "Power (mW)", "PPC"});
  for (const auto& v : variants) {
    auto opts = bench::flow_options(period);
    opts.enable_timing_partition = v.timing_partition;
    opts.path_based_criticality = v.path_based;
    opts.path_based_paths = v.paths;
    const auto res = core::run_flow(nl, core::Config::Hetero3D, opts);
    t.row({v.name, TextTable::integer(res.timing_part.pinned_cells),
           TextTable::num(res.metrics.wns_ns, 3),
           TextTable::num(res.metrics.tns_ns, 2),
           TextTable::num(res.metrics.total_power_mw, 1),
           TextTable::num(res.metrics.ppc, 3)});
  }
  t.print();
  return 0;
}
