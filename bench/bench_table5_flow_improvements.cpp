// Reproduces paper Table V: improvements from the heterogeneous version of
// the Pin-3D flow over the baseline Pin-3D on the CPU design at the same
// frequency.
//
// Baseline "Pin-3D" = heterogeneous technology but none of the paper's
// enhancements: no timing-based partitioning (plain placement-driven
// min-cut), per-die macro-style CTS (broken clock tree), no repartitioning
// ECO. "Hetero-Pin-3D" = all three enhancements on.
//
// Expected shape (paper, CPU @ 1.2 GHz): same frequency and wirelength,
// WNS improves from deeply violating (−0.489 ns) to near-met (−0.060 ns),
// and total power drops (224 → 199 mW).

#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

using namespace m3d;
using util::TextTable;

int main() {
  bench::quiet_logs();
  const auto nl = bench::build("cpu");
  const double period = bench::target_period_ns(nl);
  std::printf("[cpu] cells=%d target=%.3f GHz\n", nl.stats().cells,
              1.0 / period);
  std::fflush(stdout);

  auto base_opts = bench::flow_options(period);
  base_opts.enable_timing_partition = false;
  base_opts.enable_repartition = false;
  base_opts.enable_cover_cts = false;
  const auto baseline =
      core::run_flow(nl, core::Config::Hetero3D, base_opts);

  const auto enhanced =
      core::run_flow(nl, core::Config::Hetero3D, bench::flow_options(period));

  TextTable t("Table V — Pin-3D baseline vs the heterogeneous Pin-3D flow "
              "(CPU, iso-frequency)");
  t.header({"", "Units", "Pin-3D", "Hetero-Pin-3D"});
  t.row({"Frequency", "GHz",
         TextTable::num(baseline.metrics.frequency_ghz, 3),
         TextTable::num(enhanced.metrics.frequency_ghz, 3)});
  t.row({"WL", "m", TextTable::num(baseline.metrics.wirelength_m, 3),
         TextTable::num(enhanced.metrics.wirelength_m, 3)});
  t.row({"WNS", "ns", TextTable::num(baseline.metrics.wns_ns, 3),
         TextTable::num(enhanced.metrics.wns_ns, 3)});
  t.row({"TNS", "ns", TextTable::num(baseline.metrics.tns_ns, 2),
         TextTable::num(enhanced.metrics.tns_ns, 2)});
  t.row({"Total Power", "mW",
         TextTable::num(baseline.metrics.total_power_mw, 1),
         TextTable::num(enhanced.metrics.total_power_mw, 1)});
  t.row({"Clock Power", "mW",
         TextTable::num(baseline.metrics.clock_power_mw, 2),
         TextTable::num(enhanced.metrics.clock_power_mw, 2)});
  t.row({"Max Clock Skew", "ns",
         TextTable::num(baseline.metrics.clock.max_skew_ns, 3),
         TextTable::num(enhanced.metrics.clock.max_skew_ns, 3)});
  t.print();

  std::printf(
      "paper reference (Table V): WNS -0.489 -> -0.060 ns, power 224.1 -> "
      "198.8 mW, WL/frequency unchanged.\n");
  return 0;
}
