// Reproduces paper Fig. 3: placement/routing layouts of the CPU design
// under (a) 2-D 9-track, (b) 2-D 12-track, and (c) heterogeneous 3-D.
// Emits one SVG per implementation (3-D renders as side-by-side tier
// panels at identical magnification, so the 9- vs 12-track cell heights
// are directly comparable, as in the paper's zoom).

#include <cstdio>

#include "common.hpp"
#include "io/svg.hpp"
#include "util/table.hpp"

using namespace m3d;

int main() {
  bench::quiet_logs();
  const auto nl = bench::build("cpu");
  const double period = bench::target_period_ns(nl);
  std::printf("[cpu] cells=%d target=%.3f GHz\n", nl.stats().cells,
              1.0 / period);
  std::fflush(stdout);

  const std::string dir = bench::artifact_dir();
  util::TextTable t("Fig. 3 — CPU layouts");
  t.header({"Implementation", "Width (um)", "Rows", "SVG"});
  struct Item {
    core::Config cfg;
    const char* file;
  };
  for (const auto& item :
       {Item{core::Config::TwoD9T, "fig3a_cpu_2d_9t.svg"},
        Item{core::Config::TwoD12T, "fig3b_cpu_2d_12t.svg"},
        Item{core::Config::Hetero3D, "fig3c_cpu_hetero_3d.svg"}}) {
    auto res = bench::run_config(nl, item.cfg, period);
    io::SvgOptions opt;
    opt.draw_nets = true;
    const auto path =
        io::write_layout_svg(res.design, dir + "/" + item.file, opt);
    const double rows =
        res.design.floorplan().height() /
        res.design.lib(netlist::kBottomTier).row_height_um();
    t.row({core::config_name(item.cfg),
           util::TextTable::num(res.metrics.chip_width_um, 0),
           util::TextTable::num(rows, 0), path});
  }
  t.print();
  std::printf(
      "Note: in fig3c the left panel is the 12-track bottom tier (1.2 um "
      "rows), the right panel the 9-track top tier (0.9 um rows) — the cell-"
      "height contrast of the paper's zoomed view.\n");
  return 0;
}
