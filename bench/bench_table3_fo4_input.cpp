// Reproduces paper Table III (and Fig. 2b): impact of heterogeneous
// technology when the *input* to the FO-4 driver comes from a different
// tier — the driver and loads share a tier, but the input swings to the
// foreign rail.
//
//   Left pair : fast cells; Case-I input 0.90 V, Case-II input 0.81 V
//   Right pair: slow cells; Case-I input 0.81 V, Case-II input 0.90 V
//
// Expected shape (paper): an *underdriven* fast stage slows down slightly
// and leaks dramatically more (+250 %); an *overdriven* slow stage speeds
// up slightly and leaks less (−45 %). Stage-delay shifts carry opposite
// signs in the two directions, which is why multi-stage paths mostly
// cancel the boundary error.

#include <cstdio>

#include "ckt/fo4.hpp"
#include "util/table.hpp"

using m3d::ckt::fast_inverter;
using m3d::ckt::Fo4Config;
using m3d::ckt::Fo4Result;
using m3d::ckt::simulate_fo4;
using m3d::ckt::slow_inverter;
using m3d::util::TextTable;

namespace {
double pct(double a, double b) { return (a - b) / b * 100.0; }
}  // namespace

int main() {
  Fo4Config f1;  // fast cells, native input
  Fo4Config f2;  // fast cells, input from the slow tier
  f2.input_vdd = 0.81;
  Fo4Config s1;  // slow cells, native input
  s1.driver = s1.load = slow_inverter();
  s1.input_vdd = 0.81;
  Fo4Config s2;  // slow cells, input from the fast tier
  s2.driver = s2.load = slow_inverter();
  s2.input_vdd = 0.90;

  const Fo4Result rf1 = simulate_fo4(f1);
  const Fo4Result rf2 = simulate_fo4(f2);
  const Fo4Result rs1 = simulate_fo4(s1);
  const Fo4Result rs2 = simulate_fo4(s2);

  TextTable t(
      "Table III — heterogeneity at the driver input (FO-4, Fig. 2b).\n"
      "Time in ps, power in uW.");
  t.header({"", "Case-I", "Case-II", "D%", "Case-I", "Case-II", "D%"});
  t.row({"Tier-0 (input from)", "fast", "slow", "-", "slow", "fast", "-"});
  t.row({"Tier-1 (cells)", "fast", "fast", "-", "slow", "slow", "-"});
  t.row({"Driver VG (V)", "0.90", "0.81", TextTable::pct(-10.0, 1), "0.81",
         "0.90", TextTable::pct(11.1, 1)});
  auto row = [&](const char* name, auto get) {
    t.row({name, TextTable::num(get(rf1), 3), TextTable::num(get(rf2), 3),
           TextTable::pct(pct(get(rf2), get(rf1)), 1),
           TextTable::num(get(rs1), 3), TextTable::num(get(rs2), 3),
           TextTable::pct(pct(get(rs2), get(rs1)), 1)});
  };
  row("Rise Slew", [](const Fo4Result& r) { return r.rise_slew_ps; });
  row("Fall Slew", [](const Fo4Result& r) { return r.fall_slew_ps; });
  row("Rise Del.", [](const Fo4Result& r) { return r.rise_delay_ps; });
  row("Fall Del.", [](const Fo4Result& r) { return r.fall_delay_ps; });
  row("Lkg. Pow.", [](const Fo4Result& r) { return r.leakage_uw; });
  row("Total Pow.", [](const Fo4Result& r) { return r.total_power_uw; });
  t.print();

  std::printf(
      "paper reference (Table III):\n"
      "  fast cells, 0.81 V input: delays +3.4/+4.1 %%, leakage +250 %%, "
      "power +9.2 %%\n"
      "  slow cells, 0.90 V input: delays -5.3/-5.1 %%, leakage -44.9 %%, "
      "power -0.6 %%\n");
  return 0;
}
