// Reproduces paper Table VI: absolute PPAC results of the heterogeneous
// 3-D designs for the four netlists (netcard, aes, ldpc, cpu), each at the
// iso-performance target set by its 12-track 2-D maximum frequency.
//
// Absolute values differ from the paper (different PDK, scaled netlists);
// the per-netlist *relations* are the reproduction target: netcard/cpu are
// the big designs, LDPC shows the lowest density (wire-dominated), AES the
// highest frequency, and every WNS sits slightly negative (timing pushed
// to the limit).

#include <cstdio>
#include <fstream>

#include "common.hpp"
#include "io/reports.hpp"

using namespace m3d;

int main() {
  bench::quiet_logs();
  // One sweep over the exec pool: per-netlist frequency searches and the
  // hetero flows run as a task graph (M3D_THREADS controls the width),
  // and the 12-track search flows are shared with other benches through
  // the flow cache. Results are deterministic at any thread count.
  bench::SweepOptions sweep;
  sweep.configs = {core::Config::Hetero3D};
  const auto items = bench::run_sweep(sweep);

  std::vector<core::DesignMetrics> hetero;
  for (const auto& item : items) {
    std::printf("[%s] cells=%d target=%.3f GHz\n", item.netlist.c_str(),
                item.cells, 1.0 / item.period_ns);
    hetero.push_back(item.metrics());
  }
  std::fflush(stdout);
  io::table6_ppac(hetero).print();

  const std::string csv_path = bench::artifact_dir() + "/table6.csv";
  std::ofstream(csv_path) << io::metrics_csv(hetero);
  std::printf("CSV written to %s\n", csv_path.c_str());
  return 0;
}
