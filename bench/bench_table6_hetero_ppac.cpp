// Reproduces paper Table VI: absolute PPAC results of the heterogeneous
// 3-D designs for the four netlists (netcard, aes, ldpc, cpu), each at the
// iso-performance target set by its 12-track 2-D maximum frequency.
//
// Absolute values differ from the paper (different PDK, scaled netlists);
// the per-netlist *relations* are the reproduction target: netcard/cpu are
// the big designs, LDPC shows the lowest density (wire-dominated), AES the
// highest frequency, and every WNS sits slightly negative (timing pushed
// to the limit).

#include <cstdio>
#include <fstream>

#include "common.hpp"
#include "io/reports.hpp"

using namespace m3d;

int main() {
  bench::quiet_logs();
  std::vector<core::DesignMetrics> hetero;
  for (const auto& name : bench::netlist_names()) {
    const auto nl = bench::build(name);
    const double period = bench::target_period_ns(nl);
    std::printf("[%s] cells=%d target=%.3f GHz\n", name.c_str(),
                nl.stats().cells, 1.0 / period);
    std::fflush(stdout);
    auto res = bench::run_config(nl, core::Config::Hetero3D, period);
    hetero.push_back(res.metrics);
  }
  io::table6_ppac(hetero).print();

  const std::string csv_path = bench::artifact_dir() + "/table6.csv";
  std::ofstream(csv_path) << io::metrics_csv(hetero);
  std::printf("CSV written to %s\n", csv_path.c_str());
  return 0;
}
