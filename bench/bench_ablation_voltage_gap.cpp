// Ablation: the inter-tier voltage gap (paper §II-B / §III-B). Sweeps the
// slow tier's rail downward and measures the FO-4 boundary effects plus
// the level-shifter-free rule V_DDH − V_DDL < 0.3·V_DDH (and < Vthp).
//
// Expected shape: the boundary delay/leakage discrepancies grow with the
// gap; past ~0.3·V_DDH the rule fails and level shifters would be
// mandatory — which the paper shows is untenable at monolithic densities
// (~15 % of all nets cross tiers).

#include <cstdio>

#include "ckt/fo4.hpp"
#include "tech/tech_lib.hpp"
#include "util/table.hpp"

using namespace m3d;
using util::TextTable;

int main() {
  const auto fast = ckt::fast_inverter();

  TextTable t(
      "Ablation — inter-tier voltage gap (fast tier fixed at 0.90 V; slow "
      "tier rail swept). FO-4 driver on the slow tier, input from the fast "
      "tier.");
  t.header({"V_low (V)", "gap/V_DDH", "fall delay D%", "rise delay D%",
            "leakage D%", "LS-free rule"});

  for (double vlow : {0.87, 0.81, 0.75, 0.69, 0.63, 0.57, 0.51}) {
    auto slow = ckt::slow_inverter();
    slow.vdd = vlow;
    // Native-rail baseline for this corner.
    ckt::Fo4Config base;
    base.driver = base.load = slow;
    base.input_vdd = vlow;
    // Boundary case: input swings to the fast rail.
    ckt::Fo4Config cross = base;
    cross.input_vdd = fast.vdd;

    const auto rb = ckt::simulate_fo4(base);
    const auto rc = ckt::simulate_fo4(cross);
    const double gap = (fast.vdd - vlow) / fast.vdd;
    const bool ls_free =
        tech::level_shifter_free(fast.vdd, vlow, /*min_vthp=*/0.30);
    t.row({TextTable::num(vlow, 2), TextTable::num(gap, 2),
           TextTable::pct(
               (rc.fall_delay_ps / rb.fall_delay_ps - 1.0) * 100.0, 1),
           TextTable::pct(
               (rc.rise_delay_ps / rb.rise_delay_ps - 1.0) * 100.0, 1),
           TextTable::pct((rc.leakage_uw / rb.leakage_uw - 1.0) * 100.0, 1),
           ls_free ? "OK" : "VIOLATED"});
  }
  t.print();

  std::printf(
      "paper rule: V_DDH - V_DDL < 0.3 x V_DDH (and below Vthp) for "
      "level-shifter-free operation;\nthe 0.90/0.81 V pair used throughout "
      "the paper sits at a 10 %% gap.\n");
  return 0;
}
