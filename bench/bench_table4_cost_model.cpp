// Reproduces paper Table IV: the cost-model assumptions and equations
// (1)–(5), plus a die-area sweep showing dies-per-wafer, yields and die
// costs for 2-D vs 3-D, and the crossover behaviour that motivates 3-D
// cost analysis (Ku et al. [10]).

#include <cstdio>

#include "cost/cost.hpp"
#include "util/table.hpp"

using m3d::cost::CostModel;
using m3d::util::TextTable;

int main() {
  CostModel m;

  TextTable assumptions("Table IV — cost model assumptions [Ku ICCAD'16]");
  assumptions.header({"Quantity", "Value"});
  assumptions.row({"Baseline wafer cost (FEOL + 8 metals)", "C'"});
  assumptions.row({"Wafer FEOL cost", "0.30 x C'"});
  assumptions.row({"Wafer BEOL cost (up to 6 metals)", "0.66 x C'"});
  assumptions.row({"3D integration cost (alpha)", "0.05 x C'"});
  assumptions.row({"Wafer diameter", "300 mm"});
  assumptions.row(
      {"Defect density (Dw)",
       TextTable::num(m.defect_density_mm2, 2) + " mm^-2"});
  assumptions.row({"Wafer yield (kappa)", TextTable::num(m.wafer_yield, 2)});
  assumptions.row(
      {"3D yield degradation (beta)", TextTable::num(m.yield_degradation_3d, 2)});
  assumptions.row(
      {"2D wafer cost (C_2D)", TextTable::num(m.wafer_cost_2d(), 2) + " x C'"});
  assumptions.row(
      {"3D wafer cost (C_3D)", TextTable::num(m.wafer_cost_3d(), 2) + " x C'"});
  assumptions.print();

  TextTable sweep(
      "Equations (1)-(5) over a die-area sweep "
      "(die cost in 1e-6 C'; 3-D die hosts the same logic at half footprint)");
  sweep.header({"2D die (mm2)", "DPW 2D", "Y2D", "cost 2D", "3D die (mm2)",
                "DPW 3D", "Y3D", "cost 3D", "3D premium %"});
  for (double a2d : {0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6,
                     51.2, 102.4}) {
    const double a3d = a2d / 2.0;
    const double c2d = m.die_cost(a2d, false);
    const double c3d = m.die_cost(a3d, true);
    sweep.row({TextTable::num(a2d, 2),
               TextTable::num(m.dies_per_wafer(a2d), 0),
               TextTable::num(m.die_yield_2d(a2d), 3),
               TextTable::num(c2d * 1e6, 2), TextTable::num(a3d, 2),
               TextTable::num(m.dies_per_wafer(a3d), 0),
               TextTable::num(m.die_yield_3d(a3d), 3),
               TextTable::num(c3d * 1e6, 2),
               TextTable::pct((c3d / c2d - 1.0) * 100.0, 1)});
  }
  sweep.print();

  std::printf(
      "Shape check: the folded 3-D die costs a small premium at tiny areas\n"
      "(wafer-cost dominated) and approaches / crosses below the 2-D cost\n"
      "as yield loss on large 2-D dies grows — the Ku et al. trade that\n"
      "heterogeneous 3-D then improves by shrinking the die outright.\n");
  return 0;
}
