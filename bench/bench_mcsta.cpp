/// \file bench_mcsta.cpp
/// \brief BENCH_mcsta: the corner-vectorized STA sweep vs the sequential
///        scalar baseline it replaces.
///
/// Builds the netcard netlist at paper scale (M3D_BENCH_SCALE overrides;
/// default 1.0 here, unlike the flow benches' 0.5 — the claim under test
/// is a paper-scale one), runs the structural half of the hetero flow to
/// get a placed, partitioned, clocked and routed two-tier design, then for
/// each K in {4, 16, 64}:
///
///   * baseline — K *sequential* Sta constructions + run()s, corner k's
///     exact factors as a single-corner spec (CornerSet::single(k)): what
///     a multi-corner signoff costs without lane vectorization. Engine
///     construction is inside the timed region on both sides — the
///     sequential flow pays it K times, the sweep once; that asymmetry is
///     real work, not bench framing.
///   * sweep — ONE Sta with corners.count = K: every corner as a stride-K
///     SoA lane in a single level-synchronous pass.
///
/// Identity gate: lane 0 of the sweep must reproduce the k = 0 sequential
/// run bit for bit (WNS, TNS, violation count). Factors derate device
/// delays only (slews and NLDM lookups are corner-shared), so the
/// non-nominal lanes are a guard-band model, not K independent scalar
/// runs — the gate pins down exactly the equivalence the engine promises.
/// Any divergence fails the bench with a nonzero exit.
///
/// Everything runs on a single-thread pool: the speedup reported is pure
/// lane amortization, not parallelism. Emits BENCH_mcsta.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "cts/cts.hpp"
#include "exec/pool.hpp"
#include "gen/designs.hpp"
#include "part/fm.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "sta/sta.hpp"
#include "tech/corners.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Point {
  int corners = 0;
  double seq_s = 0.0;    ///< K sequential single-corner engines
  double sweep_s = 0.0;  ///< one K-lane engine
  double speedup = 0.0;
  bool identity_ok = false;
};

}  // namespace

int main() {
  m3d::bench::quiet_logs();

  double scale = 1.0;
  if (const char* s = std::getenv("M3D_BENCH_SCALE")) scale = std::atof(s);

  m3d::gen::GenOptions g;
  g.scale = scale;
  m3d::netlist::Netlist nl = m3d::gen::make_design("netcard", g);
  const int cells = nl.stats().cells;

  // Structural flow half (same recipe as bench_scale) on the hetero
  // stack, so the two tiers really carry different libraries and the
  // per-tier corner factors act on distinct delay populations.
  m3d::netlist::Design d =
      m3d::core::design_for_config(nl, m3d::core::Config::Hetero3D);
  m3d::place::PlaceOptions popt;
  m3d::place::init_floorplan(d, popt);
  m3d::place::global_place(d, popt);
  m3d::part::FmOptions fopt;
  m3d::part::bin_fm_partition(d, fopt);
  m3d::place::legalize(d);
  m3d::cts::build_clock_tree(d);
  m3d::place::legalize(d);
  m3d::cts::annotate_clock_latencies(d);
  const auto routes = m3d::route::route_design(d);

  m3d::exec::Pool pool(1);  // pure lane amortization, no parallelism
  m3d::sta::StaOptions base;
  base.pool = &pool;

  m3d::tech::CornerSpec spec;  // default derates/sigmas of the env spec
  spec.derate[0] = 1.0;
  spec.derate[1] = 1.05;
  spec.sigma[0] = 0.03;
  spec.sigma[1] = 0.08;

  std::vector<Point> points;
  bool all_ok = true;
  std::printf("%8s %10s %10s %9s %9s  (netcard, %d cells, 1 thread)\n", "K",
              "seq_s", "sweep_s", "speedup", "identity", cells);
  for (const int K : {4, 16, 64}) {
    Point p;
    p.corners = K;
    m3d::tech::CornerSpec sk = spec;
    sk.count = K;
    const auto cs = m3d::tech::CornerSet::generate(sk);

    // Sequential baseline: construction + full run per corner.
    double wns0 = 0.0, tns0 = 0.0;
    int violated0 = 0;
    auto t = Clock::now();
    for (int k = 0; k < K; ++k) {
      m3d::sta::StaOptions o = base;
      o.corners = cs.single(k);
      m3d::sta::Sta sta(d, &routes, o);
      const auto& r = sta.run();
      if (k == 0) {
        wns0 = r.wns();
        tns0 = r.tns();
        violated0 = r.violated_endpoints();
      }
    }
    p.seq_s = seconds_since(t);

    // One K-lane sweep.
    t = Clock::now();
    m3d::sta::StaOptions o = base;
    o.corners = sk;
    m3d::sta::Sta sta(d, &routes, o);
    const auto& r = sta.run();
    p.sweep_s = seconds_since(t);

    p.speedup = p.seq_s / p.sweep_s;
    p.identity_ok = r.corner_count() == K && r.wns() == wns0 &&
                    r.tns() == tns0 &&
                    r.violated_endpoints() == violated0 &&
                    r.corner_wns(0) == wns0 && r.corner_tns(0) == tns0;
    all_ok = all_ok && p.identity_ok;
    points.push_back(p);
    std::printf("%8d %10.3f %10.3f %8.2fx %9s\n", K, p.seq_s, p.sweep_s,
                p.speedup, p.identity_ok ? "ok" : "FAIL");
    std::fflush(stdout);
  }

  const std::string path = m3d::bench::artifact_dir() + "/BENCH_mcsta.json";
  std::ofstream os(path);
  os << "{\n  \"design\": \"netcard\",\n  \"cells\": " << cells
     << ",\n  \"scale\": " << scale
     << ",\n  \"threads\": 1,\n  \"baseline\": "
        "\"K sequential single-corner Sta construct+run\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"corners\": %d, \"seq_s\": %.3f, \"sweep_s\": %.3f, "
                  "\"speedup\": %.2f, \"lane0_identity\": %s}%s\n",
                  p.corners, p.seq_s, p.sweep_s, p.speedup,
                  p.identity_ok ? "true" : "false",
                  i + 1 < points.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return all_ok ? 0 : 1;
}
