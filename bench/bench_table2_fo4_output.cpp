// Reproduces paper Table II (and Fig. 2a): impact of heterogeneous
// technology when the FO-4 driver and its loads sit on different tiers.
//
//   Case-I  : fast driver, fast loads   (homogeneous fast baseline)
//   Case-II : fast driver, slow loads   (heterogeneity at driver output)
//   Case-III: slow driver, slow loads   (homogeneous slow baseline)
//   Case-IV : slow driver, fast loads   (heterogeneity at driver output)
//
// Expected shape (paper): Case-II is *faster* than Case-I (lighter foreign
// loads, Δ% negative on every timing row), Case-IV *slower* than Case-III
// (Δ% positive), leakage essentially unchanged in both pairs, and all slew
// shifts small enough to stay inside library characterization ranges.

#include <cstdio>

#include "ckt/fo4.hpp"
#include "util/table.hpp"

using m3d::ckt::fast_inverter;
using m3d::ckt::Fo4Config;
using m3d::ckt::Fo4Result;
using m3d::ckt::simulate_fo4;
using m3d::ckt::slow_inverter;
using m3d::util::TextTable;

namespace {

double pct(double a, double b) { return (a - b) / b * 100.0; }

}  // namespace

int main() {
  Fo4Config c1;  // fast/fast
  Fo4Config c2;  // fast driver, slow loads
  c2.load = slow_inverter();
  Fo4Config c3;  // slow/slow
  c3.driver = c3.load = slow_inverter();
  c3.input_vdd = 0.81;
  Fo4Config c4;  // slow driver, fast loads
  c4.driver = slow_inverter();
  c4.input_vdd = 0.81;

  const Fo4Result r1 = simulate_fo4(c1);
  const Fo4Result r2 = simulate_fo4(c2);
  const Fo4Result r3 = simulate_fo4(c3);
  const Fo4Result r4 = simulate_fo4(c4);

  TextTable t(
      "Table II — heterogeneity at the driver output (FO-4, Fig. 2a).\n"
      "Time in ps, power in uW. Delta% compares II vs I and IV vs III.");
  t.header({"", "Case-I", "Case-II", "D%", "Case-III", "Case-IV", "D%"});
  t.row({"Tier-0 (driver)", "fast", "fast", "-", "slow", "slow", "-"});
  t.row({"Tier-1 (loads)", "fast", "slow", "-", "slow", "fast", "-"});
  auto row = [&](const char* name, auto get) {
    t.row({name, TextTable::num(get(r1), 3), TextTable::num(get(r2), 3),
           TextTable::pct(pct(get(r2), get(r1)), 1),
           TextTable::num(get(r3), 3), TextTable::num(get(r4), 3),
           TextTable::pct(pct(get(r4), get(r3)), 1)});
  };
  row("Rise Slew", [](const Fo4Result& r) { return r.rise_slew_ps; });
  row("Fall Slew", [](const Fo4Result& r) { return r.fall_slew_ps; });
  row("Rise Del.", [](const Fo4Result& r) { return r.rise_delay_ps; });
  row("Fall Del.", [](const Fo4Result& r) { return r.fall_delay_ps; });
  row("Lkg. Pow.", [](const Fo4Result& r) { return r.leakage_uw; });
  row("Total Pow.", [](const Fo4Result& r) { return r.total_power_uw; });
  t.print();

  std::printf(
      "paper reference (Table II):\n"
      "  Case-II vs I : slews -6.7/-16.9 %%, delays -13.1/-18.1 %%, "
      "leakage -0.3 %%, power -4.3 %%\n"
      "  Case-IV vs III: slews +14.2/+8.1 %%, delays +6.4/+22.3 %%, "
      "leakage -1.3 %%, power +9.0 %%\n");
  return 0;
}
