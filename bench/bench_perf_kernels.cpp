// Google-benchmark microbenchmarks of the flow's hot kernels: STA,
// routing estimation, FM partitioning, global placement and CTS. These
// quantify the engine itself (not the paper's results) and guard against
// performance regressions.
//
// Threaded variants take Args({scale_x100, threads}) and run the kernel on
// an explicit exec::Pool of that size (NOT google-benchmark's ->Threads(),
// which would run the *benchmark body* on several caller threads — here a
// single caller hands work to a worker pool, which is how the flow uses
// these kernels). Every kernel is byte-identical across pool sizes, so the
// threaded rows measure pure scheduling/scaling behaviour.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <vector>

#include "core/flow.hpp"
#include "cts/cts.hpp"
#include "exec/pool.hpp"
#include "gen/designs.hpp"
#include "netlist/design.hpp"
#include "part/fm.hpp"
#include "place/place.hpp"
#include "power/power.hpp"
#include "route/route.hpp"
#include "sta/sta.hpp"
#include "tech/library_factory.hpp"
#include "util/log.hpp"

using namespace m3d;

namespace {

netlist::Design placed_design(double scale, bool hetero) {
  util::set_log_level(util::LogLevel::Error);
  gen::GenOptions g;
  g.scale = scale;
  netlist::Design d(gen::make_netcard(g), tech::make_12track(),
                    hetero ? tech::make_9track() : nullptr);
  d.set_clock_period_ns(1.0);
  place::place_design(d, {});
  return d;
}

void BM_RouteDesign(benchmark::State& state) {
  const auto d = placed_design(state.range(0) / 100.0, false);
  for (auto _ : state) {
    auto routes = route::route_design(d);
    benchmark::DoNotOptimize(routes.total_wirelength_um);
  }
  state.SetItemsProcessed(state.iterations() * d.nl().net_count());
}
BENCHMARK(BM_RouteDesign)->Arg(10)->Arg(25)->Arg(50);

void BM_StaFull(benchmark::State& state) {
  const auto d = placed_design(state.range(0) / 100.0, false);
  const auto routes = route::route_design(d);
  for (auto _ : state) {
    auto r = sta::run_sta(d, &routes);
    benchmark::DoNotOptimize(r.wns());
  }
  state.SetItemsProcessed(state.iterations() * d.nl().pin_count());
}
BENCHMARK(BM_StaFull)->Arg(10)->Arg(25)->Arg(50);

void BM_FmMincut(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto d = placed_design(state.range(0) / 100.0, true);
    state.ResumeTiming();
    benchmark::DoNotOptimize(part::fm_mincut(d));
  }
}
BENCHMARK(BM_FmMincut)->Arg(10)->Arg(25);

void BM_BinFm(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto d = placed_design(state.range(0) / 100.0, true);
    state.ResumeTiming();
    benchmark::DoNotOptimize(part::bin_fm_partition(d));
  }
}
BENCHMARK(BM_BinFm)->Arg(10)->Arg(25);

void BM_GlobalPlace(benchmark::State& state) {
  util::set_log_level(util::LogLevel::Error);
  gen::GenOptions g;
  g.scale = state.range(0) / 100.0;
  const auto nl = gen::make_netcard(g);
  for (auto _ : state) {
    netlist::Design d(nl, tech::make_12track());
    place::init_floorplan(d, {});
    place::global_place(d, {});
    benchmark::DoNotOptimize(d.pos(0).x);
  }
}
BENCHMARK(BM_GlobalPlace)->Arg(10)->Arg(25);

void BM_ClockTree(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto d = placed_design(state.range(0) / 100.0, false);
    state.ResumeTiming();
    auto rep = cts::build_clock_tree(d);
    benchmark::DoNotOptimize(rep.buffer_count);
  }
}
BENCHMARK(BM_ClockTree)->Arg(10)->Arg(25);

// ---- threaded variants ---------------------------------------------------

void BM_StaFullThreaded(benchmark::State& state) {
  const auto d = placed_design(state.range(0) / 100.0, false);
  const auto routes = route::route_design(d);
  exec::Pool pool(static_cast<int>(state.range(1)));
  sta::StaOptions opt;
  opt.pool = &pool;
  for (auto _ : state) {
    sta::Sta engine(d, &routes, opt);
    benchmark::DoNotOptimize(engine.run().wns());
  }
  state.SetItemsProcessed(state.iterations() * d.nl().pin_count());
}
BENCHMARK(BM_StaFullThreaded)
    ->Args({200, 1})
    ->Args({200, 2})
    ->Args({200, 4})
    ->Args({400, 1})
    ->Args({400, 4});

void BM_GlobalPlaceThreaded(benchmark::State& state) {
  util::set_log_level(util::LogLevel::Error);
  gen::GenOptions g;
  g.scale = state.range(0) / 100.0;
  const auto nl = gen::make_netcard(g);
  exec::Pool pool(static_cast<int>(state.range(1)));
  place::PlaceOptions popt;
  popt.pool = &pool;
  for (auto _ : state) {
    netlist::Design d(nl, tech::make_12track());
    place::init_floorplan(d, popt);
    place::global_place(d, popt);
    benchmark::DoNotOptimize(d.pos(0).x);
  }
}
BENCHMARK(BM_GlobalPlaceThreaded)
    ->Args({50, 1})
    ->Args({50, 2})
    ->Args({50, 4});

void BM_RouteDesignThreaded(benchmark::State& state) {
  const auto d = placed_design(state.range(0) / 100.0, false);
  exec::Pool pool(static_cast<int>(state.range(1)));
  route::RouteOptions opt;
  opt.pool = &pool;
  for (auto _ : state) {
    auto routes = route::route_design(d, opt);
    benchmark::DoNotOptimize(routes.total_wirelength_um);
  }
  state.SetItemsProcessed(state.iterations() * d.nl().net_count());
}
BENCHMARK(BM_RouteDesignThreaded)
    ->Args({50, 1})
    ->Args({50, 2})
    ->Args({50, 4})
    ->Args({100, 1})
    ->Args({100, 4});

void BM_ClockTreeThreaded(benchmark::State& state) {
  exec::Pool pool(static_cast<int>(state.range(1)));
  cts::CtsOptions opt;
  opt.pool = &pool;
  for (auto _ : state) {
    state.PauseTiming();
    auto d = placed_design(state.range(0) / 100.0, false);
    state.ResumeTiming();
    auto rep = cts::build_clock_tree(d, opt);
    benchmark::DoNotOptimize(rep.buffer_count);
  }
}
BENCHMARK(BM_ClockTreeThreaded)->Args({25, 1})->Args({25, 2})->Args({25, 4});

void BM_PowerThreaded(benchmark::State& state) {
  const auto d = placed_design(state.range(0) / 100.0, true);
  const auto routes = route::route_design(d);
  exec::Pool pool(static_cast<int>(state.range(1)));
  power::PowerOptions opt;
  opt.pool = &pool;
  for (auto _ : state) {
    auto p = power::analyze_power(d, &routes, 1.0, opt);
    benchmark::DoNotOptimize(p.total_mw);
  }
  state.SetItemsProcessed(state.iterations() * d.nl().net_count());
}
BENCHMARK(BM_PowerThreaded)
    ->Args({50, 1})
    ->Args({50, 2})
    ->Args({50, 4})
    ->Args({100, 1})
    ->Args({100, 4});

void BM_BinFmThreaded(benchmark::State& state) {
  exec::Pool pool(static_cast<int>(state.range(1)));
  part::FmOptions fopt;
  fopt.pool = &pool;
  for (auto _ : state) {
    state.PauseTiming();
    auto d = placed_design(state.range(0) / 100.0, true);
    state.ResumeTiming();
    benchmark::DoNotOptimize(part::bin_fm_partition(d, fopt));
  }
}
BENCHMARK(BM_BinFmThreaded)->Args({25, 1})->Args({25, 4});

// ---- incremental vs full STA (the ECO inner loop) ------------------------

/// One repartition-ECO-style iteration: flip K std cells to the other
/// tier, patch the incident routes, re-time. The incremental variant
/// retimes only the dirty cones; the full variant re-routes and re-runs
/// STA from scratch — exactly what the ECO loop did before Sta::retime().
void BM_EcoIterationRetime(benchmark::State& state) {
  auto d = placed_design(state.range(0) / 100.0, true);
  auto routes = route::route_design(d);
  sta::Sta engine(d, &routes);
  engine.run();
  std::vector<netlist::CellId> movers;
  for (netlist::CellId c = 0; c < d.nl().cell_count(); ++c) {
    const auto& cc = d.nl().cell(c);
    if (cc.is_comb() || cc.is_sequential()) movers.push_back(c);
  }
  const int k = static_cast<int>(state.range(1));
  std::size_t at = 0;
  for (auto _ : state) {
    std::vector<netlist::CellId> moved;
    moved.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      const netlist::CellId c = movers[at++ % movers.size()];
      d.set_tier(c, 1 - d.tier(c));
      moved.push_back(c);
    }
    route::update_routes_for_cells(d, moved, &routes);
    benchmark::DoNotOptimize(engine.retime(moved).wns());
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_EcoIterationRetime)
    ->Args({25, 20})
    ->Args({50, 20})
    ->Args({50, 100});

void BM_EcoIterationFull(benchmark::State& state) {
  auto d = placed_design(state.range(0) / 100.0, true);
  std::vector<netlist::CellId> movers;
  for (netlist::CellId c = 0; c < d.nl().cell_count(); ++c) {
    const auto& cc = d.nl().cell(c);
    if (cc.is_comb() || cc.is_sequential()) movers.push_back(c);
  }
  const int k = static_cast<int>(state.range(1));
  std::size_t at = 0;
  for (auto _ : state) {
    for (int i = 0; i < k; ++i) {
      const netlist::CellId c = movers[at++ % movers.size()];
      d.set_tier(c, 1 - d.tier(c));
    }
    auto routes = route::route_design(d);
    auto r = sta::run_sta(d, &routes);
    benchmark::DoNotOptimize(r.wns());
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_EcoIterationFull)
    ->Args({25, 20})
    ->Args({50, 20})
    ->Args({50, 100});

// ---- checkpoint overhead --------------------------------------------------

/// Full small Hetero3D flow with and without stage checkpointing. The
/// delta between the two is the whole cost of the checkpoint layer: one
/// replayable-netlist + design-state serialization and an atomic
/// tmp-file/rename publish per stage boundary and per ECO iteration
/// (~12 boundaries for this flow). finish() deletes the files each run,
/// so every iteration pays the cold-write path.
void BM_FlowPlain(benchmark::State& state) {
  util::set_log_level(util::LogLevel::Error);
  gen::GenOptions g;
  g.scale = state.range(0) / 100.0;
  const auto nl = gen::make_design("aes", g);
  core::FlowOptions opt;
  opt.clock_period_ns = 1.2;
  opt.opt.max_sizing_rounds = 2;
  opt.repart.max_iters = 3;
  for (auto _ : state) {
    auto res = core::run_flow(nl, core::Config::Hetero3D, opt);
    benchmark::DoNotOptimize(res.metrics.total_power_mw);
  }
}
BENCHMARK(BM_FlowPlain)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_FlowCheckpointed(benchmark::State& state) {
  util::set_log_level(util::LogLevel::Error);
  gen::GenOptions g;
  g.scale = state.range(0) / 100.0;
  const auto nl = gen::make_design("aes", g);
  core::FlowOptions opt;
  opt.clock_period_ns = 1.2;
  opt.opt.max_sizing_rounds = 2;
  opt.repart.max_iters = 3;
  const auto dir =
      std::filesystem::temp_directory_path() / "m3d_bench_ckpt";
  opt.checkpoint_dir = dir.string();
  for (auto _ : state) {
    auto res = core::run_flow(nl, core::Config::Hetero3D, opt);
    benchmark::DoNotOptimize(res.metrics.total_power_mw);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_FlowCheckpointed)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_NldmLookup(benchmark::State& state) {
  const auto lib = tech::make_12track();
  const auto* inv = lib->find(tech::CellFunc::Inv, 2);
  const auto& table =
      inv->arc(0).delay[static_cast<int>(tech::Transition::Rise)];
  double slew = 0.011, load = 3.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(slew, load));
    slew = slew < 0.15 ? slew * 1.13 : 0.011;
    load = load < 90.0 ? load * 1.21 : 3.7;
  }
}
BENCHMARK(BM_NldmLookup);

}  // namespace

BENCHMARK_MAIN();
