// Google-benchmark microbenchmarks of the flow's hot kernels: STA,
// routing estimation, FM partitioning, global placement and CTS. These
// quantify the engine itself (not the paper's results) and guard against
// performance regressions.

#include <benchmark/benchmark.h>

#include "cts/cts.hpp"
#include "gen/designs.hpp"
#include "netlist/design.hpp"
#include "part/fm.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "sta/sta.hpp"
#include "tech/library_factory.hpp"
#include "util/log.hpp"

using namespace m3d;

namespace {

netlist::Design placed_design(double scale, bool hetero) {
  util::set_log_level(util::LogLevel::Error);
  gen::GenOptions g;
  g.scale = scale;
  netlist::Design d(gen::make_netcard(g), tech::make_12track(),
                    hetero ? tech::make_9track() : nullptr);
  d.set_clock_period_ns(1.0);
  place::place_design(d, {});
  return d;
}

void BM_RouteDesign(benchmark::State& state) {
  const auto d = placed_design(state.range(0) / 100.0, false);
  for (auto _ : state) {
    auto routes = route::route_design(d);
    benchmark::DoNotOptimize(routes.total_wirelength_um);
  }
  state.SetItemsProcessed(state.iterations() * d.nl().net_count());
}
BENCHMARK(BM_RouteDesign)->Arg(10)->Arg(25)->Arg(50);

void BM_StaFull(benchmark::State& state) {
  const auto d = placed_design(state.range(0) / 100.0, false);
  const auto routes = route::route_design(d);
  for (auto _ : state) {
    auto r = sta::run_sta(d, &routes);
    benchmark::DoNotOptimize(r.wns());
  }
  state.SetItemsProcessed(state.iterations() * d.nl().pin_count());
}
BENCHMARK(BM_StaFull)->Arg(10)->Arg(25)->Arg(50);

void BM_FmMincut(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto d = placed_design(state.range(0) / 100.0, true);
    state.ResumeTiming();
    benchmark::DoNotOptimize(part::fm_mincut(d));
  }
}
BENCHMARK(BM_FmMincut)->Arg(10)->Arg(25);

void BM_BinFm(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto d = placed_design(state.range(0) / 100.0, true);
    state.ResumeTiming();
    benchmark::DoNotOptimize(part::bin_fm_partition(d));
  }
}
BENCHMARK(BM_BinFm)->Arg(10)->Arg(25);

void BM_GlobalPlace(benchmark::State& state) {
  util::set_log_level(util::LogLevel::Error);
  gen::GenOptions g;
  g.scale = state.range(0) / 100.0;
  const auto nl = gen::make_netcard(g);
  for (auto _ : state) {
    netlist::Design d(nl, tech::make_12track());
    place::init_floorplan(d, {});
    place::global_place(d, {});
    benchmark::DoNotOptimize(d.pos(0).x);
  }
}
BENCHMARK(BM_GlobalPlace)->Arg(10)->Arg(25);

void BM_ClockTree(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto d = placed_design(state.range(0) / 100.0, false);
    state.ResumeTiming();
    auto rep = cts::build_clock_tree(d);
    benchmark::DoNotOptimize(rep.buffer_count);
  }
}
BENCHMARK(BM_ClockTree)->Arg(10)->Arg(25);

void BM_NldmLookup(benchmark::State& state) {
  const auto lib = tech::make_12track();
  const auto* inv = lib->find(tech::CellFunc::Inv, 2);
  const auto& table =
      inv->arc(0).delay[static_cast<int>(tech::Transition::Rise)];
  double slew = 0.011, load = 3.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(slew, load));
    slew = slew < 0.15 ? slew * 1.13 : 0.011;
    load = load < 90.0 ? load * 1.21 : 3.7;
  }
}
BENCHMARK(BM_NldmLookup);

}  // namespace

BENCHMARK_MAIN();
