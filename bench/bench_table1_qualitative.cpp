// Reproduces paper Table I (and the Fig. 1 configuration taxonomy): the
// qualitative PPAC ranking of the five technology/design variations at
// their own maximum achievable frequencies. 1 = worst, 5 = best.
//
// Paper's expected ranking (Table I):
//   Frequency : 9T-2D < 9T-3D < 12T-2D < hetero < 12T-3D
//   Power     : 12T-2D worst … 9T-3D best, hetero in the middle
//   Power/Freq: hetero best
//   Footprint : 9T-3D best (smallest), 12T-2D worst
//   Si Area   : 9-track configs best, 12-track worst, hetero between
//   Die Cost  : 9-track cheapest, 12T-3D most expensive, hetero between

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "util/table.hpp"

using namespace m3d;
using util::TextTable;

namespace {

/// Rank values 1..n (1 = worst). `higher_is_better` decides orientation.
std::vector<int> rank(const std::vector<double>& v, bool higher_is_better) {
  std::vector<std::size_t> idx(v.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return higher_is_better ? v[a] < v[b] : v[a] > v[b];
  });
  std::vector<int> out(v.size());
  for (std::size_t r = 0; r < idx.size(); ++r)
    out[idx[r]] = static_cast<int>(r) + 1;
  return out;
}

}  // namespace

int main() {
  bench::quiet_logs();
  std::printf(
      "Fig. 1 — the five configurations:\n"
      "  (a) 12-track 2D   (b) 9-track 2D   (c) 9-track 3D\n"
      "  (d) 12-track 3D   (e) 9+12-track heterogeneous 3D\n\n");

  const auto nl = bench::build("cpu");
  const std::vector<core::Config> configs = {
      core::Config::TwoD9T, core::Config::ThreeD9T, core::Config::TwoD12T,
      core::Config::ThreeD12T, core::Config::Hetero3D};

  // Each configuration at its own maximum achievable frequency.
  std::vector<core::DesignMetrics> ms;
  for (auto cfg : configs) {
    const double f = core::find_max_frequency(nl, cfg,
                                              bench::flow_options(1.0), 0.3,
                                              4.0, /*iters=*/4);
    auto res = bench::run_config(nl, cfg, 1.0 / f);
    std::printf("[%s] max freq %.3f GHz\n", core::config_name(cfg), f);
    std::fflush(stdout);
    ms.push_back(res.metrics);
  }

  std::vector<double> freq, power, pf, footprint, si, cost;
  for (const auto& m : ms) {
    freq.push_back(m.frequency_ghz);
    power.push_back(m.total_power_mw);
    pf.push_back(m.frequency_ghz / m.total_power_mw);  // perf per power
    footprint.push_back(m.footprint_mm2);
    si.push_back(m.silicon_area_mm2);
    cost.push_back(m.die_cost_e6);
  }

  TextTable t(
      "Table I — qualitative PPAC ranking at each configuration's maximum "
      "frequency (1 = worst, 5 = best; measured value in parentheses)");
  std::vector<std::string> head{"Metric"};
  for (const auto& m : ms) head.push_back(m.config_name);
  t.header(head);
  auto row = [&](const char* name, const std::vector<double>& vals,
                 bool higher_better, int prec) {
    const auto ranks = rank(vals, higher_better);
    std::vector<std::string> cells{name};
    for (std::size_t i = 0; i < vals.size(); ++i)
      cells.push_back(std::to_string(ranks[i]) + " (" +
                      TextTable::num(vals[i], prec) + ")");
    t.row(cells);
  };
  row("Frequency (GHz)", freq, true, 2);
  row("Power (mW)", power, false, 1);
  row("Freq/Power (GHz/mW)", pf, true, 3);
  row("Footprint (mm2)", footprint, false, 4);
  row("Si Area (mm2)", si, false, 4);
  row("Die Cost (1e-6 C')", cost, false, 2);
  t.print();

  std::printf(
      "paper expectation (Table I ranks, config order %s):\n"
      "  Frequency 1/2/3/5(+hetero 4), Power 4/5/1/2(+3), Power-Freq "
      "3/4/1/2(+5),\n"
      "  Footprint 4/5/1/2(+3), Si Area 5/5/1/1(+3), Die Cost 5/4/2/1(+3)\n",
      "9T-2D, 9T-3D, 12T-2D, 12T-3D, Hetero");
  return 0;
}
