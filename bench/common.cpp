#include "common.hpp"

#include <cstdlib>
#include <filesystem>

#include "util/log.hpp"

namespace m3d::bench {

double bench_scale() {
  if (const char* s = std::getenv("M3D_BENCH_SCALE")) return std::atof(s);
  return 0.5;
}

std::string artifact_dir() {
  std::string dir = "bench_artifacts";
  if (const char* s = std::getenv("M3D_BENCH_OUT")) dir = s;
  std::filesystem::create_directories(dir);
  return dir;
}

const std::vector<std::string>& netlist_names() {
  static const std::vector<std::string> kNames = {"netcard", "aes", "ldpc",
                                                  "cpu"};
  return kNames;
}

netlist::Netlist build(const std::string& name) {
  gen::GenOptions g;
  g.scale = bench_scale();
  return gen::make_design(name, g);
}

core::FlowOptions flow_options(double period_ns) {
  core::FlowOptions o;
  o.clock_period_ns = period_ns;
  return o;
}

core::FlowOptions flow_options_for(const std::string& netlist_name,
                                   double period_ns) {
  core::FlowOptions o = flow_options(period_ns);
  // Wire-dominant LDPC needs routing headroom: the paper reports 64 %
  // placement density for it vs ~82–88 % for the other netlists.
  if (netlist_name == "ldpc") o.utilization = 0.50;
  return o;
}

double target_period_ns(const netlist::Netlist& nl) {
  const double f = core::find_max_frequency(
      nl, core::Config::TwoD12T, flow_options_for(nl.name(), 1.0), 0.4, 4.0,
      /*iters=*/6);
  return 1.0 / f;
}

core::FlowResult run_config(const netlist::Netlist& nl, core::Config cfg,
                            double period_ns) {
  return core::run_flow(nl, cfg, flow_options_for(nl.name(), period_ns));
}

void quiet_logs() { util::set_log_level(util::LogLevel::Error); }

}  // namespace m3d::bench
