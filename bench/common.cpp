#include "common.hpp"

#include <cstdlib>
#include <filesystem>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "exec/task_graph.hpp"
#include "util/log.hpp"

namespace m3d::bench {

double bench_scale() {
  if (const char* s = std::getenv("M3D_BENCH_SCALE")) return std::atof(s);
  return 0.5;
}

std::string artifact_dir() {
  std::string dir = "bench_artifacts";
  if (const char* s = std::getenv("M3D_BENCH_OUT")) dir = s;
  std::filesystem::create_directories(dir);
  return dir;
}

const std::vector<std::string>& netlist_names() {
  static const std::vector<std::string> kNames = {"netcard", "aes", "ldpc",
                                                  "cpu"};
  return kNames;
}

netlist::Netlist build(const std::string& name) {
  gen::GenOptions g;
  g.scale = bench_scale();
  return gen::make_design(name, g);
}

core::FlowOptions flow_options(double period_ns) {
  core::FlowOptions o;
  o.clock_period_ns = period_ns;
  // Multi-corner signoff from M3D_STA_CORNERS / M3D_TIER_SIGMA /
  // M3D_TIER_DERATE; unset leaves the default single-corner spec and
  // byte-identical artifacts.
  o.sta_corners = tech::corner_spec_from_env();
  return o;
}

core::FlowOptions flow_options_for(const std::string& netlist_name,
                                   double period_ns) {
  core::FlowOptions o = flow_options(period_ns);
  // Wire-dominant LDPC needs routing headroom: the paper reports 64 %
  // placement density for it vs ~82–88 % for the other netlists.
  if (netlist_name == "ldpc") o.utilization = 0.50;
  return o;
}

double target_period_ns(const netlist::Netlist& nl, const exec::Ctx* ctx) {
  const double f = core::find_max_frequency(
      nl, core::Config::TwoD12T, flow_options_for(nl.name(), 1.0), 0.4, 4.0,
      /*iters=*/6, /*wns_budget_frac=*/0.05, ctx);
  return 1.0 / f;
}

exec::FlowCache::ResultPtr run_config_cached(const netlist::Netlist& nl,
                                             core::Config cfg,
                                             double period_ns,
                                             const exec::Ctx* ctx) {
  const exec::Ctx defaults;
  if (!ctx) ctx = &defaults;
  return ctx->cache_or_global().get_or_run(
      nl, cfg, flow_options_for(nl.name(), period_ns));
}

core::FlowResult run_config(const netlist::Netlist& nl, core::Config cfg,
                            double period_ns) {
  return *run_config_cached(nl, cfg, period_ns);
}

std::vector<SweepItem> run_sweep(const SweepOptions& sweep) {
  const std::vector<std::string>& names =
      sweep.netlists.empty() ? netlist_names() : sweep.netlists;
  const std::vector<core::Config> configs =
      sweep.configs.empty()
          ? std::vector<core::Config>{core::Config::TwoD9T,
                                      core::Config::TwoD12T,
                                      core::Config::ThreeD9T,
                                      core::Config::ThreeD12T,
                                      core::Config::Hetero3D}
          : sweep.configs;

  std::unique_ptr<exec::Pool> local_pool;
  if (sweep.threads > 0)
    local_pool = std::make_unique<exec::Pool>(sweep.threads);
  exec::Ctx ctx{local_pool ? local_pool.get() : nullptr, sweep.cache};
  exec::Pool& pool = ctx.pool_or_global();

  const std::size_t n = names.size();
  const std::size_t c = configs.size();
  std::vector<netlist::Netlist> nls(n);
  std::vector<double> periods(n, 0.0);
  std::vector<SweepItem> items(n * c);

  // Dependencies, not barriers: build_i → period_i → flow_ij. The graph
  // interleaves netlists freely; result slots are indexed, so the output
  // order (netlist-major, config-minor) never depends on scheduling.
  exec::TaskGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = graph.add("build:" + names[i],
                             [&, i] { nls[i] = build(names[i]); });
    const auto p = graph.add(
        "period:" + names[i],
        [&, i] {
          periods[i] = sweep.fixed_period_ns > 0.0
                           ? sweep.fixed_period_ns
                           : target_period_ns(nls[i], &ctx);
        },
        {b});
    for (std::size_t j = 0; j < c; ++j) {
      graph.add(
          std::string("flow:") + names[i] + ":" +
              core::config_name(configs[j]),
          [&, i, j] {
            SweepItem& item = items[i * c + j];
            item.netlist = names[i];
            item.cfg = configs[j];
            item.period_ns = periods[i];
            item.cells = nls[i].stats().cells;
            item.result =
                run_config_cached(nls[i], configs[j], periods[i], &ctx);
          },
          {p});
    }
  }
  graph.run(pool);
  return items;
}

void quiet_logs() { util::set_log_level(util::LogLevel::Error); }

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<long>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
  return static_cast<long>(ru.ru_maxrss);  // kB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace m3d::bench
