// Reproduces paper Table VII: percent deltas of the heterogeneous 3-D
// design against the four homogeneous configurations (2D-9T, 2D-12T,
// 3D-9T, 3D-12T) for all four netlists at iso-performance, plus the §V
// summary claim (PPAC benefit ranges).
//
// Shape targets from the paper:
//  * Si Area, Die Cost: negative everywhere (hetero smaller/cheaper);
//  * Total Power: negative vs every configuration;
//  * Eff. Delay: positive (slightly) vs 12-track 3-D — the homogeneous
//    fast design wins raw delay, hetero wins PDP/PPC;
//  * PPC: positive everywhere, roughly +10…+60 %;
//  * 9-track columns show large negative WNS (they miss the 12T target).

#include <cstdio>
#include <fstream>
#include <map>

#include "common.hpp"
#include "io/reports.hpp"
#include "util/stats.hpp"

using namespace m3d;

int main() {
  bench::quiet_logs();
  // The full 4-netlist × 5-config grid as one task-graph sweep over the
  // exec pool. The 2D-12T data point of each netlist is a flow-cache hit:
  // the iso-performance frequency search already ran that exact flow.
  const auto items = bench::run_sweep({});

  std::map<std::string, std::vector<core::DesignMetrics>> by_config;
  std::vector<core::DesignMetrics> all;
  for (const auto& item : items) {
    if (item.cfg == core::Config::TwoD9T)  // first config of each netlist
      std::printf("[%s] cells=%d target=%.3f GHz\n", item.netlist.c_str(),
                  item.cells, 1.0 / item.period_ns);
    by_config[core::config_name(item.cfg)].push_back(item.metrics());
    all.push_back(item.metrics());
  }
  std::fflush(stdout);

  const auto& hetero = by_config["Hetero-3D"];
  io::table6_ppac(hetero).print();
  for (const char* cfg : {"2D-9T", "2D-12T", "3D-9T", "3D-12T"})
    io::table7_deltas(cfg, hetero, by_config[cfg]).print();

  // §V summary: aggregate PPC benefit vs 3-D and vs 2-D configurations.
  std::vector<double> vs3d, vs2d;
  for (std::size_t i = 0; i < hetero.size(); ++i) {
    vs2d.push_back(core::pct_delta(hetero[i].ppc, by_config["2D-9T"][i].ppc));
    vs2d.push_back(
        core::pct_delta(hetero[i].ppc, by_config["2D-12T"][i].ppc));
    vs3d.push_back(core::pct_delta(hetero[i].ppc, by_config["3D-9T"][i].ppc));
    vs3d.push_back(
        core::pct_delta(hetero[i].ppc, by_config["3D-12T"][i].ppc));
  }
  std::printf(
      "\nSection V claim check — hetero PPC benefit:\n"
      "  vs 3-D configs: %+.1f %% … %+.1f %%   (paper: +10 … +50 %%)\n"
      "  vs 2-D configs: %+.1f %% … %+.1f %%   (paper: +18 … +57 %%)\n",
      util::min_of(vs3d), util::max_of(vs3d), util::min_of(vs2d),
      util::max_of(vs2d));

  const std::string csv_path = bench::artifact_dir() + "/table7_all.csv";
  std::ofstream(csv_path) << io::metrics_csv(all);
  std::printf("CSV written to %s\n", csv_path.c_str());
  return 0;
}
