file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_qualitative.dir/bench_table1_qualitative.cpp.o"
  "CMakeFiles/bench_table1_qualitative.dir/bench_table1_qualitative.cpp.o.d"
  "bench_table1_qualitative"
  "bench_table1_qualitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
