# Empty dependencies file for bench_fig3_layouts.
# This may be replaced when dependencies are built.
