file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fo4_input.dir/bench_table3_fo4_input.cpp.o"
  "CMakeFiles/bench_table3_fo4_input.dir/bench_table3_fo4_input.cpp.o.d"
  "bench_table3_fo4_input"
  "bench_table3_fo4_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fo4_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
