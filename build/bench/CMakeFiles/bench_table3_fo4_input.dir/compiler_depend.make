# Empty compiler generated dependencies file for bench_table3_fo4_input.
# This may be replaced when dependencies are built.
