# Empty compiler generated dependencies file for bench_ablation_area_cap.
# This may be replaced when dependencies are built.
