file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_area_cap.dir/bench_ablation_area_cap.cpp.o"
  "CMakeFiles/bench_ablation_area_cap.dir/bench_ablation_area_cap.cpp.o.d"
  "bench_ablation_area_cap"
  "bench_ablation_area_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_area_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
