# Empty dependencies file for bench_ablation_voltage_gap.
# This may be replaced when dependencies are built.
