file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_deepdive.dir/bench_table8_deepdive.cpp.o"
  "CMakeFiles/bench_table8_deepdive.dir/bench_table8_deepdive.cpp.o.d"
  "bench_table8_deepdive"
  "bench_table8_deepdive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_deepdive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
