# Empty dependencies file for bench_table8_deepdive.
# This may be replaced when dependencies are built.
