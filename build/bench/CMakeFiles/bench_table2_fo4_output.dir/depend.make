# Empty dependencies file for bench_table2_fo4_output.
# This may be replaced when dependencies are built.
