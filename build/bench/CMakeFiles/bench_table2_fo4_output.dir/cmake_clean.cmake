file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_fo4_output.dir/bench_table2_fo4_output.cpp.o"
  "CMakeFiles/bench_table2_fo4_output.dir/bench_table2_fo4_output.cpp.o.d"
  "bench_table2_fo4_output"
  "bench_table2_fo4_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_fo4_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
