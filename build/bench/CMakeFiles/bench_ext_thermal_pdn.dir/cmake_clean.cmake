file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_thermal_pdn.dir/bench_ext_thermal_pdn.cpp.o"
  "CMakeFiles/bench_ext_thermal_pdn.dir/bench_ext_thermal_pdn.cpp.o.d"
  "bench_ext_thermal_pdn"
  "bench_ext_thermal_pdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_thermal_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
