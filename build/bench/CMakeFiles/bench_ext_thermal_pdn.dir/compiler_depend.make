# Empty compiler generated dependencies file for bench_ext_thermal_pdn.
# This may be replaced when dependencies are built.
