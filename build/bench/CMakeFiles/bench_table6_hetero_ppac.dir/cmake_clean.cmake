file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_hetero_ppac.dir/bench_table6_hetero_ppac.cpp.o"
  "CMakeFiles/bench_table6_hetero_ppac.dir/bench_table6_hetero_ppac.cpp.o.d"
  "bench_table6_hetero_ppac"
  "bench_table6_hetero_ppac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_hetero_ppac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
