# Empty dependencies file for bench_table6_hetero_ppac.
# This may be replaced when dependencies are built.
