file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_criticality.dir/bench_ablation_criticality.cpp.o"
  "CMakeFiles/bench_ablation_criticality.dir/bench_ablation_criticality.cpp.o.d"
  "bench_ablation_criticality"
  "bench_ablation_criticality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_criticality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
