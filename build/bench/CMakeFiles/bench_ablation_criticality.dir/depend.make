# Empty dependencies file for bench_ablation_criticality.
# This may be replaced when dependencies are built.
