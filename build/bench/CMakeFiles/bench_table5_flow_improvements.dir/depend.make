# Empty dependencies file for bench_table5_flow_improvements.
# This may be replaced when dependencies are built.
