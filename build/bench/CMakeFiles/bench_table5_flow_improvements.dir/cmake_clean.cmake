file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_flow_improvements.dir/bench_table5_flow_improvements.cpp.o"
  "CMakeFiles/bench_table5_flow_improvements.dir/bench_table5_flow_improvements.cpp.o.d"
  "bench_table5_flow_improvements"
  "bench_table5_flow_improvements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_flow_improvements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
