file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_config_deltas.dir/bench_table7_config_deltas.cpp.o"
  "CMakeFiles/bench_table7_config_deltas.dir/bench_table7_config_deltas.cpp.o.d"
  "bench_table7_config_deltas"
  "bench_table7_config_deltas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_config_deltas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
