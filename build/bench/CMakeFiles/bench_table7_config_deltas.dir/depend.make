# Empty dependencies file for bench_table7_config_deltas.
# This may be replaced when dependencies are built.
