# Empty dependencies file for bench_fig4_overlays.
# This may be replaced when dependencies are built.
