file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_overlays.dir/bench_fig4_overlays.cpp.o"
  "CMakeFiles/bench_fig4_overlays.dir/bench_fig4_overlays.cpp.o.d"
  "bench_fig4_overlays"
  "bench_fig4_overlays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_overlays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
