file(REMOVE_RECURSE
  "CMakeFiles/m3d_util.dir/log.cpp.o"
  "CMakeFiles/m3d_util.dir/log.cpp.o.d"
  "CMakeFiles/m3d_util.dir/rng.cpp.o"
  "CMakeFiles/m3d_util.dir/rng.cpp.o.d"
  "CMakeFiles/m3d_util.dir/table.cpp.o"
  "CMakeFiles/m3d_util.dir/table.cpp.o.d"
  "libm3d_util.a"
  "libm3d_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
