file(REMOVE_RECURSE
  "libm3d_util.a"
)
