file(REMOVE_RECURSE
  "libm3d_io.a"
)
