# Empty compiler generated dependencies file for m3d_io.
# This may be replaced when dependencies are built.
