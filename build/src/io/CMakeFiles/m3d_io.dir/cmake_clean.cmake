file(REMOVE_RECURSE
  "CMakeFiles/m3d_io.dir/reports.cpp.o"
  "CMakeFiles/m3d_io.dir/reports.cpp.o.d"
  "CMakeFiles/m3d_io.dir/svg.cpp.o"
  "CMakeFiles/m3d_io.dir/svg.cpp.o.d"
  "libm3d_io.a"
  "libm3d_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
