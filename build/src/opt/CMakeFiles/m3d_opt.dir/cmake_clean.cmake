file(REMOVE_RECURSE
  "CMakeFiles/m3d_opt.dir/opt.cpp.o"
  "CMakeFiles/m3d_opt.dir/opt.cpp.o.d"
  "libm3d_opt.a"
  "libm3d_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
