# Empty dependencies file for m3d_opt.
# This may be replaced when dependencies are built.
