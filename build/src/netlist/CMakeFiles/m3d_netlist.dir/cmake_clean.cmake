file(REMOVE_RECURSE
  "CMakeFiles/m3d_netlist.dir/checks.cpp.o"
  "CMakeFiles/m3d_netlist.dir/checks.cpp.o.d"
  "CMakeFiles/m3d_netlist.dir/design.cpp.o"
  "CMakeFiles/m3d_netlist.dir/design.cpp.o.d"
  "CMakeFiles/m3d_netlist.dir/netlist.cpp.o"
  "CMakeFiles/m3d_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/m3d_netlist.dir/verilog_reader.cpp.o"
  "CMakeFiles/m3d_netlist.dir/verilog_reader.cpp.o.d"
  "CMakeFiles/m3d_netlist.dir/writer.cpp.o"
  "CMakeFiles/m3d_netlist.dir/writer.cpp.o.d"
  "libm3d_netlist.a"
  "libm3d_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
