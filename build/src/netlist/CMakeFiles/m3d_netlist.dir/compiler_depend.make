# Empty compiler generated dependencies file for m3d_netlist.
# This may be replaced when dependencies are built.
