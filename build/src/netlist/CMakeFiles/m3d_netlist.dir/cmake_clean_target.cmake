file(REMOVE_RECURSE
  "libm3d_netlist.a"
)
