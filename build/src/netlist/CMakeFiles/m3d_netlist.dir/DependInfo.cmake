
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/checks.cpp" "src/netlist/CMakeFiles/m3d_netlist.dir/checks.cpp.o" "gcc" "src/netlist/CMakeFiles/m3d_netlist.dir/checks.cpp.o.d"
  "/root/repo/src/netlist/design.cpp" "src/netlist/CMakeFiles/m3d_netlist.dir/design.cpp.o" "gcc" "src/netlist/CMakeFiles/m3d_netlist.dir/design.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/m3d_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/m3d_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog_reader.cpp" "src/netlist/CMakeFiles/m3d_netlist.dir/verilog_reader.cpp.o" "gcc" "src/netlist/CMakeFiles/m3d_netlist.dir/verilog_reader.cpp.o.d"
  "/root/repo/src/netlist/writer.cpp" "src/netlist/CMakeFiles/m3d_netlist.dir/writer.cpp.o" "gcc" "src/netlist/CMakeFiles/m3d_netlist.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/m3d_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/m3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
