file(REMOVE_RECURSE
  "CMakeFiles/m3d_thermal.dir/thermal.cpp.o"
  "CMakeFiles/m3d_thermal.dir/thermal.cpp.o.d"
  "libm3d_thermal.a"
  "libm3d_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
