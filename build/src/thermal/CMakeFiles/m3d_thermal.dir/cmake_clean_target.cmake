file(REMOVE_RECURSE
  "libm3d_thermal.a"
)
