file(REMOVE_RECURSE
  "libm3d_pdn.a"
)
