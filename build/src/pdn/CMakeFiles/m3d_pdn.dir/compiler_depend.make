# Empty compiler generated dependencies file for m3d_pdn.
# This may be replaced when dependencies are built.
