file(REMOVE_RECURSE
  "CMakeFiles/m3d_pdn.dir/pdn.cpp.o"
  "CMakeFiles/m3d_pdn.dir/pdn.cpp.o.d"
  "libm3d_pdn.a"
  "libm3d_pdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
