# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("tech")
subdirs("netlist")
subdirs("gen")
subdirs("sta")
subdirs("place")
subdirs("route")
subdirs("part")
subdirs("cts")
subdirs("opt")
subdirs("power")
subdirs("cost")
subdirs("ckt")
subdirs("thermal")
subdirs("pdn")
subdirs("core")
subdirs("io")
