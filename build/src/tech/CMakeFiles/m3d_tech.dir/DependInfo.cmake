
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/liberty.cpp" "src/tech/CMakeFiles/m3d_tech.dir/liberty.cpp.o" "gcc" "src/tech/CMakeFiles/m3d_tech.dir/liberty.cpp.o.d"
  "/root/repo/src/tech/library_factory.cpp" "src/tech/CMakeFiles/m3d_tech.dir/library_factory.cpp.o" "gcc" "src/tech/CMakeFiles/m3d_tech.dir/library_factory.cpp.o.d"
  "/root/repo/src/tech/nldm.cpp" "src/tech/CMakeFiles/m3d_tech.dir/nldm.cpp.o" "gcc" "src/tech/CMakeFiles/m3d_tech.dir/nldm.cpp.o.d"
  "/root/repo/src/tech/tech_lib.cpp" "src/tech/CMakeFiles/m3d_tech.dir/tech_lib.cpp.o" "gcc" "src/tech/CMakeFiles/m3d_tech.dir/tech_lib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/m3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
