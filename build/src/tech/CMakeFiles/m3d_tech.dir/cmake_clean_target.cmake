file(REMOVE_RECURSE
  "libm3d_tech.a"
)
