file(REMOVE_RECURSE
  "CMakeFiles/m3d_tech.dir/liberty.cpp.o"
  "CMakeFiles/m3d_tech.dir/liberty.cpp.o.d"
  "CMakeFiles/m3d_tech.dir/library_factory.cpp.o"
  "CMakeFiles/m3d_tech.dir/library_factory.cpp.o.d"
  "CMakeFiles/m3d_tech.dir/nldm.cpp.o"
  "CMakeFiles/m3d_tech.dir/nldm.cpp.o.d"
  "CMakeFiles/m3d_tech.dir/tech_lib.cpp.o"
  "CMakeFiles/m3d_tech.dir/tech_lib.cpp.o.d"
  "libm3d_tech.a"
  "libm3d_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
