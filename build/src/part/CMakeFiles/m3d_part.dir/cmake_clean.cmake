file(REMOVE_RECURSE
  "CMakeFiles/m3d_part.dir/fm.cpp.o"
  "CMakeFiles/m3d_part.dir/fm.cpp.o.d"
  "CMakeFiles/m3d_part.dir/repartition.cpp.o"
  "CMakeFiles/m3d_part.dir/repartition.cpp.o.d"
  "CMakeFiles/m3d_part.dir/timing_partition.cpp.o"
  "CMakeFiles/m3d_part.dir/timing_partition.cpp.o.d"
  "libm3d_part.a"
  "libm3d_part.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_part.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
