file(REMOVE_RECURSE
  "libm3d_part.a"
)
