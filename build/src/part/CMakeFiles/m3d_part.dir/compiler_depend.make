# Empty compiler generated dependencies file for m3d_part.
# This may be replaced when dependencies are built.
