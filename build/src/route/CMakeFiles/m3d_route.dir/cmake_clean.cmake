file(REMOVE_RECURSE
  "CMakeFiles/m3d_route.dir/route.cpp.o"
  "CMakeFiles/m3d_route.dir/route.cpp.o.d"
  "libm3d_route.a"
  "libm3d_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
