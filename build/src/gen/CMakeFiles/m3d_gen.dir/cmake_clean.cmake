file(REMOVE_RECURSE
  "CMakeFiles/m3d_gen.dir/designs.cpp.o"
  "CMakeFiles/m3d_gen.dir/designs.cpp.o.d"
  "CMakeFiles/m3d_gen.dir/fabric.cpp.o"
  "CMakeFiles/m3d_gen.dir/fabric.cpp.o.d"
  "libm3d_gen.a"
  "libm3d_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
