file(REMOVE_RECURSE
  "libm3d_gen.a"
)
