# Empty dependencies file for m3d_gen.
# This may be replaced when dependencies are built.
