file(REMOVE_RECURSE
  "CMakeFiles/m3d_cost.dir/cost.cpp.o"
  "CMakeFiles/m3d_cost.dir/cost.cpp.o.d"
  "libm3d_cost.a"
  "libm3d_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
