file(REMOVE_RECURSE
  "libm3d_cost.a"
)
