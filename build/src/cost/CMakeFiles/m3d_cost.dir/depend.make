# Empty dependencies file for m3d_cost.
# This may be replaced when dependencies are built.
