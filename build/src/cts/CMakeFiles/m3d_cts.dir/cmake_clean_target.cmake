file(REMOVE_RECURSE
  "libm3d_cts.a"
)
