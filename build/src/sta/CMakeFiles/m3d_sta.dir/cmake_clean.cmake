file(REMOVE_RECURSE
  "CMakeFiles/m3d_sta.dir/sta.cpp.o"
  "CMakeFiles/m3d_sta.dir/sta.cpp.o.d"
  "libm3d_sta.a"
  "libm3d_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
