# Empty dependencies file for m3d_ckt.
# This may be replaced when dependencies are built.
