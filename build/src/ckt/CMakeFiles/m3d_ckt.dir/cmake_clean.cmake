file(REMOVE_RECURSE
  "CMakeFiles/m3d_ckt.dir/fo4.cpp.o"
  "CMakeFiles/m3d_ckt.dir/fo4.cpp.o.d"
  "CMakeFiles/m3d_ckt.dir/mosfet.cpp.o"
  "CMakeFiles/m3d_ckt.dir/mosfet.cpp.o.d"
  "libm3d_ckt.a"
  "libm3d_ckt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_ckt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
