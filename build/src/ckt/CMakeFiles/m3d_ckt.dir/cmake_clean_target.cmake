file(REMOVE_RECURSE
  "libm3d_ckt.a"
)
