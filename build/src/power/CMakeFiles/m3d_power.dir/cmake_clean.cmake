file(REMOVE_RECURSE
  "CMakeFiles/m3d_power.dir/power.cpp.o"
  "CMakeFiles/m3d_power.dir/power.cpp.o.d"
  "libm3d_power.a"
  "libm3d_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
