# Empty dependencies file for hetero_vs_homo.
# This may be replaced when dependencies are built.
