file(REMOVE_RECURSE
  "CMakeFiles/hetero_vs_homo.dir/hetero_vs_homo.cpp.o"
  "CMakeFiles/hetero_vs_homo.dir/hetero_vs_homo.cpp.o.d"
  "hetero_vs_homo"
  "hetero_vs_homo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_vs_homo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
