# Empty compiler generated dependencies file for test_power_opt_cts.
# This may be replaced when dependencies are built.
