file(REMOVE_RECURSE
  "CMakeFiles/test_power_opt_cts.dir/test_power_opt_cts.cpp.o"
  "CMakeFiles/test_power_opt_cts.dir/test_power_opt_cts.cpp.o.d"
  "test_power_opt_cts"
  "test_power_opt_cts.pdb"
  "test_power_opt_cts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_opt_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
