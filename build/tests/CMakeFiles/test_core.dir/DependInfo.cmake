
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/test_core.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/m3d_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/m3d_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/m3d_place.dir/DependInfo.cmake"
  "/root/repo/build/src/part/CMakeFiles/m3d_part.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/m3d_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/m3d_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/m3d_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/m3d_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/m3d_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/m3d_route.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/m3d_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/m3d_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/m3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
