# Empty dependencies file for test_thermal_pdn.
# This may be replaced when dependencies are built.
