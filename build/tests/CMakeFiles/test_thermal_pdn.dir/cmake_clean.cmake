file(REMOVE_RECURSE
  "CMakeFiles/test_thermal_pdn.dir/test_thermal_pdn.cpp.o"
  "CMakeFiles/test_thermal_pdn.dir/test_thermal_pdn.cpp.o.d"
  "test_thermal_pdn"
  "test_thermal_pdn.pdb"
  "test_thermal_pdn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
