# Empty dependencies file for test_ckt.
# This may be replaced when dependencies are built.
