file(REMOVE_RECURSE
  "CMakeFiles/test_ckt.dir/test_ckt.cpp.o"
  "CMakeFiles/test_ckt.dir/test_ckt.cpp.o.d"
  "test_ckt"
  "test_ckt.pdb"
  "test_ckt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
