# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_route[1]_include.cmake")
include("/root/repo/build/tests/test_sta[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_place[1]_include.cmake")
include("/root/repo/build/tests/test_part[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_ckt[1]_include.cmake")
include("/root/repo/build/tests/test_power_opt_cts[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_thermal_pdn[1]_include.cmake")
include("/root/repo/build/tests/test_interchange[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_checks[1]_include.cmake")
